"""Attribute -> attack-vector association engine.

This is the reproduction of the paper's CYBOK-style search step: "The inputs
to the security tools are the system model and security data in the form of
natural text. ... The main output, then, is this association of attack vectors
to the system model."

Matching follows the paper's observation that "high-level descriptions of
system components and interactions will tend to match attack pattern and
weakness instances; low-level or more specific descriptions of software and
hardware platforms will relate more closely to vulnerability instances":

* attack patterns and weaknesses are matched by *query-coverage* scoring --
  the fraction of the attribute's IDF mass found in the record text -- which
  lets a product attribute like ``Windows 7`` land on generic
  operating-system weaknesses,
* vulnerabilities are matched when the record names the platform: either a
  CPE-like platform tag of the CVE is covered by the attribute text, or the
  attribute's distinctive terms are covered by the CVE text,
* fidelity-aware mode skips vulnerability matching for attributes that are
  not implementation-specific (the paper's suggested abstraction strategy).

The engine is built for the dashboard's interactive what-if loop (Section 3):

* scoring runs over flat contiguous arrays precomputed at index-build time
  (positional postings, dense weight vectors, per-record match prototypes),
  so no IDF, CVSS score, or record lookup is recomputed per candidate per
  query,
* each record kind is sharded by a platform/theme-derived key
  (:mod:`repro.search.sharding`) and the TF-IDF scorers skip whole shards
  whose vocabulary cannot intersect the query -- candidate pruning beyond
  the token-level inverted index, counted in
  :attr:`EngineStats.shards_skipped` / :attr:`EngineStats.candidates_pruned`
  and bit-identical to the monolithic layout (``sharded=False``),
* results are cached per attribute and per ``(text, kind, scorer, threshold)``
  in bounded, thread-safe LRU caches -- identical attributes recur across
  components (e.g. the SIS and BPCS platforms both run Windows 7), so a warm
  :meth:`SearchEngine.associate` call is orders of magnitude faster than a
  cold one while returning identical results,
* :meth:`SearchEngine.associate` fans component scoring out across a thread
  pool (``workers=N``) with an order-preserving merge, and
  :meth:`SearchEngine.associate_many` batches several systems while scoring
  every distinct component exactly once,
* :meth:`SearchEngine.reassociate` re-scores only the components whose
  attribute set changed relative to a baseline association and reuses the
  baseline's :class:`ComponentAssociation` objects otherwise,
* :meth:`SearchEngine.save_index_snapshot` /
  :meth:`SearchEngine.from_index_snapshot` persist the tokenized indexes, and
  :meth:`SearchEngine.from_prepared` rebuilds a full engine from a workspace
  artifact (see :mod:`repro.workspace`) without touching corpus records until
  something actually needs them.

All of these are exact optimizations: the cached, incremental, parallel, and
artifact-loaded paths return bit-identical associations to a fresh, uncached,
serial engine (enforced by the equivalence test suite).
"""

from __future__ import annotations

import hashlib
import json
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.corpus.schema import (
    AttackPattern,
    AttackVectorRecord,
    RecordKind,
    Vulnerability,
    Weakness,
)
from repro.corpus.store import CorpusStore
from repro.graph.attributes import Attribute
from repro.graph.model import Component, SystemGraph
from repro.ioutils import atomic_write_text
from repro.progress import progress_sink
from repro.search.cache import LruCache
from repro.search.index import InvertedIndex
from repro.search.sharding import DEFAULT_MAX_SHARDS, ShardMap
from repro.search.text import jaccard_similarity, tokenize
from repro.search.tfidf import TfIdfModel

#: Supported scoring strategies.
SCORERS = ("coverage", "cosine", "jaccard")

#: Snapshot format version; bump when the payload layout changes.
SNAPSHOT_VERSION = 1

#: Default bound on each result cache (entries, not bytes).  One analyst
#: session needs a few hundred entries; the bound only matters for long-lived
#: multi-model services.
DEFAULT_MAX_CACHE_ENTRIES = 65536


def _corpus_fingerprint(corpus: CorpusStore) -> str:
    """Content hash of every (identifier, text) pair, per record class.

    Stored in index snapshots and workspace artifacts so that a payload whose
    tokenized postings no longer match the corpus *texts* (not just the
    identifier set) is rejected instead of silently scoring against stale
    tokenization.
    """
    digest = hashlib.sha256()
    for kind in RecordKind:
        for record in corpus.records_of_kind(kind):
            digest.update(record.identifier.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(record.text.encode("utf-8"))
            digest.update(b"\x01")
    return digest.hexdigest()


_SWITCH_LOCK = threading.Lock()
_SWITCH_DEPTH = 0
_SAVED_SWITCH_INTERVAL = 0.0


@contextmanager
def _fast_thread_switching():
    """Temporarily shorten the GIL switch interval around a thread pool.

    Scoring tasks interleave short pure-Python stretches with numpy sections
    that release the GIL; under the default 5 ms switch interval a CPU-bound
    thread convoys the others and a pool runs *slower* than the serial loop.
    A sub-millisecond interval restores fair interleaving for the duration of
    the fan-out.

    The interval is process-global state, so overlapping fan-outs (several
    engines serving concurrent requests) are reference-counted: the first
    entry saves and shortens, the last exit restores, and nobody restores
    while another fan-out is still running.
    """
    global _SWITCH_DEPTH, _SAVED_SWITCH_INTERVAL
    with _SWITCH_LOCK:
        if _SWITCH_DEPTH == 0:
            _SAVED_SWITCH_INTERVAL = sys.getswitchinterval()
            sys.setswitchinterval(0.0005)
        _SWITCH_DEPTH += 1
    try:
        yield
    finally:
        with _SWITCH_LOCK:
            _SWITCH_DEPTH -= 1
            if _SWITCH_DEPTH == 0:
                sys.setswitchinterval(_SAVED_SWITCH_INTERVAL)


def _record_proto(record: AttackVectorRecord) -> dict:
    """The static :class:`Match` fields of one record, precomputed once.

    Packing the non-score fields per record at build time removes the
    per-match isinstance chain and the CVSS base-score recomputation that
    used to dominate cold association.  The dict doubles as the
    ``__dict__`` template for the fast :class:`Match` constructor in
    :meth:`SearchEngine._to_match`.
    """
    if isinstance(record, Vulnerability):
        return {
            "identifier": record.identifier,
            "kind": RecordKind.VULNERABILITY,
            "name": record.identifier,
            "severity": record.severity,
            "cvss_score": record.base_score,
            "network_exploitable": record.cvss.network_exploitable,
        }
    if isinstance(record, Weakness):
        kind, name, severity = RecordKind.WEAKNESS, record.name, record.likelihood
    else:
        assert isinstance(record, AttackPattern)
        kind, name, severity = RecordKind.ATTACK_PATTERN, record.name, record.severity
    return {
        "identifier": record.identifier,
        "kind": kind,
        "name": name,
        "severity": severity,
        "cvss_score": None,
        "network_exploitable": None,
    }


@dataclass
class EngineStats:
    """Counters describing cache effectiveness and incremental reuse.

    ``components_scored`` counts full :meth:`SearchEngine.associate_component`
    evaluations; ``components_reused`` counts components served from a baseline
    association by :meth:`SearchEngine.reassociate` without re-scoring; the
    ``*_cache_evictions`` counters track entries dropped by the LRU bound
    (sizes are reported by :meth:`SearchEngine.cache_info`).

    Updates go through :meth:`bump`, which takes a lock so the counters stay
    consistent under the parallel association fan-out.
    """

    attribute_cache_hits: int = 0
    attribute_cache_misses: int = 0
    text_cache_hits: int = 0
    text_cache_misses: int = 0
    components_scored: int = 0
    components_reused: int = 0
    attribute_cache_evictions: int = 0
    text_cache_evictions: int = 0
    vulnerability_cache_evictions: int = 0
    #: Whole shards skipped by the sharded scorers because their vocabulary
    #: could not intersect the query (see :mod:`repro.search.sharding`).
    shards_skipped: int = 0
    #: Candidate records inside those skipped shards that were never touched
    #: -- pruning beyond the token-level inverted index.
    candidates_pruned: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def bump(self, name: str, amount: int = 1) -> None:
        """Atomically increment one counter."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            for name in self.__dataclass_fields__:
                setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the counters (for deltas in tests/benchmarks)."""
        with self._lock:
            return {name: getattr(self, name) for name in self.__dataclass_fields__}


@dataclass(frozen=True)
class Match:
    """One associated attack-vector record."""

    identifier: str
    kind: RecordKind
    score: float
    name: str = ""
    severity: str = ""
    cvss_score: float | None = None
    network_exploitable: bool | None = None

    def __post_init__(self) -> None:
        if self.score < 0.0:
            raise ValueError(f"match score must be non-negative, got {self.score}")

    def to_dict(self) -> dict:
        """A JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "identifier": self.identifier,
            "kind": self.kind.value,
            "score": self.score,
            "name": self.name,
            "severity": self.severity,
            "cvss_score": self.cvss_score,
            "network_exploitable": self.network_exploitable,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Match":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            identifier=payload["identifier"],
            kind=RecordKind(payload["kind"]),
            score=payload["score"],
            name=payload["name"],
            severity=payload["severity"],
            cvss_score=payload["cvss_score"],
            network_exploitable=payload["network_exploitable"],
        )


@dataclass(frozen=True)
class AttributeMatches:
    """All records associated with one attribute of one component."""

    attribute: Attribute
    attack_patterns: tuple[Match, ...] = ()
    weaknesses: tuple[Match, ...] = ()
    vulnerabilities: tuple[Match, ...] = ()

    def counts(self) -> dict[RecordKind, int]:
        """Match counts per record class (one row of the paper's Table 1)."""
        return {
            RecordKind.ATTACK_PATTERN: len(self.attack_patterns),
            RecordKind.WEAKNESS: len(self.weaknesses),
            RecordKind.VULNERABILITY: len(self.vulnerabilities),
        }

    def all_matches(self) -> tuple[Match, ...]:
        """All matches across the three classes."""
        return self.attack_patterns + self.weaknesses + self.vulnerabilities

    @property
    def total(self) -> int:
        """Total number of associated records."""
        return len(self.all_matches())


@dataclass(frozen=True)
class ComponentAssociation:
    """All attack vectors associated with one component."""

    component: Component
    attribute_matches: tuple[AttributeMatches, ...] = ()

    def unique_matches(self) -> tuple[Match, ...]:
        """Matches de-duplicated across attributes, keeping the best score."""
        best: dict[str, Match] = {}
        for attribute_match in self.attribute_matches:
            for match in attribute_match.all_matches():
                current = best.get(match.identifier)
                if current is None or match.score > current.score:
                    best[match.identifier] = match
        return tuple(sorted(best.values(), key=lambda m: (-m.score, m.identifier)))

    def counts(self) -> dict[RecordKind, int]:
        """Unique match counts per record class for the component."""
        totals = {kind: 0 for kind in RecordKind}
        for match in self.unique_matches():
            totals[match.kind] += 1
        return totals

    @property
    def total(self) -> int:
        """Total number of unique associated records."""
        return len(self.unique_matches())


@dataclass
class SystemAssociation:
    """The merged artifact: every component's associated attack vectors.

    This is the object the analyst dashboard (Section 3, Fig. 1) displays and
    the what-if loop recomputes.
    """

    system: SystemGraph
    components: tuple[ComponentAssociation, ...] = ()
    scorer: str = "coverage"
    #: Full engine configuration that produced this association (set by
    #: :meth:`SearchEngine.associate`); lets incremental re-association detect
    #: any config drift, not just a scorer change.
    engine_config: tuple | None = field(default=None, repr=False)

    def component(self, name: str) -> ComponentAssociation:
        """The association for one component."""
        for association in self.components:
            if association.component.name == name:
                return association
        raise KeyError(f"no association for component {name!r}")

    def attribute_table(self) -> list[dict]:
        """Per-attribute association counts, aggregated over components.

        Each row has ``attribute``, ``attack_patterns``, ``weaknesses``,
        ``vulnerabilities`` -- the columns of the paper's Table 1.
        """
        by_attribute: dict[str, dict[RecordKind, set[str]]] = {}
        order: list[str] = []
        for component_association in self.components:
            for attribute_match in component_association.attribute_matches:
                name = attribute_match.attribute.name
                if name not in by_attribute:
                    by_attribute[name] = {kind: set() for kind in RecordKind}
                    order.append(name)
                buckets = by_attribute[name]
                for match in attribute_match.attack_patterns:
                    buckets[RecordKind.ATTACK_PATTERN].add(match.identifier)
                for match in attribute_match.weaknesses:
                    buckets[RecordKind.WEAKNESS].add(match.identifier)
                for match in attribute_match.vulnerabilities:
                    buckets[RecordKind.VULNERABILITY].add(match.identifier)
        return [
            {
                "attribute": name,
                "attack_patterns": len(by_attribute[name][RecordKind.ATTACK_PATTERN]),
                "weaknesses": len(by_attribute[name][RecordKind.WEAKNESS]),
                "vulnerabilities": len(by_attribute[name][RecordKind.VULNERABILITY]),
            }
            for name in order
        ]

    def total_counts(self) -> dict[RecordKind, int]:
        """Unique record counts per class across the whole system."""
        seen: dict[RecordKind, set[str]] = {kind: set() for kind in RecordKind}
        for component_association in self.components:
            for match in component_association.unique_matches():
                seen[match.kind].add(match.identifier)
        return {kind: len(ids) for kind, ids in seen.items()}

    @property
    def total(self) -> int:
        """Total number of unique associated records across the system."""
        return sum(self.total_counts().values())

    def component_ranking(self) -> list[tuple[str, int]]:
        """Components ranked by number of unique associated records."""
        ranking = [
            (association.component.name, association.total)
            for association in self.components
        ]
        ranking.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranking


class SearchEngine:
    """Associates attack-vector records with system-model attributes.

    Parameters
    ----------
    corpus:
        The attack-vector corpus to search.
    pattern_threshold / weakness_threshold:
        Minimum query-coverage score for attack-pattern / weakness matches.
    vulnerability_text_threshold:
        Minimum query-coverage score for text-based vulnerability matches.
    platform_coverage:
        Fraction of a CVE platform tag's tokens that must appear in the
        attribute text for a platform-based vulnerability match.
    fidelity_aware:
        When true (the default), attributes below implementation fidelity are
        not matched against vulnerabilities, reproducing the paper's
        abstraction recommendation.
    scorer:
        ``"coverage"`` (default), ``"cosine"``, or ``"jaccard"`` -- the last
        two exist for the ablation benchmarks.
    max_per_class:
        Optional cap on matches kept per attribute per record class.
    enable_cache:
        When true (the default), attribute- and text-level results are cached
        and reused across components and repeated calls.  The cache is exact:
        disabling it changes speed, never results.
    max_cache_entries:
        LRU bound applied to each result cache; ``None`` disables eviction.
        Eviction changes speed, never results.
    sharded:
        When true (the default), the per-kind indexes are partitioned by a
        platform/theme-derived shard key and the TF-IDF scorers skip whole
        shards whose vocabulary cannot intersect the query (see
        :mod:`repro.search.sharding`).  Sharding changes speed, never
        results -- the pruned path is bit-identical to the monolithic one.
    max_shards:
        Bound on shards per record kind; the long tail of shard keys pools
        into one overflow shard.
    """

    def __init__(
        self,
        corpus: CorpusStore,
        *,
        pattern_threshold: float = 0.12,
        weakness_threshold: float = 0.12,
        vulnerability_text_threshold: float = 0.55,
        platform_coverage: float = 0.6,
        fidelity_aware: bool = True,
        scorer: str = "coverage",
        max_per_class: int | None = None,
        enable_cache: bool = True,
        max_cache_entries: int | None = DEFAULT_MAX_CACHE_ENTRIES,
        sharded: bool = True,
        max_shards: int = DEFAULT_MAX_SHARDS,
        _index_payload: dict | None = None,
    ) -> None:
        self._init_config(
            pattern_threshold=pattern_threshold,
            weakness_threshold=weakness_threshold,
            vulnerability_text_threshold=vulnerability_text_threshold,
            platform_coverage=platform_coverage,
            fidelity_aware=fidelity_aware,
            scorer=scorer,
            max_per_class=max_per_class,
            enable_cache=enable_cache,
            max_cache_entries=max_cache_entries,
            sharded=sharded,
            max_shards=max_shards,
        )
        self._corpus: CorpusStore | None = corpus
        self._corpus_loader: Callable[[], CorpusStore] | None = None
        self._build_indexes(_index_payload)

    def _init_config(
        self,
        *,
        pattern_threshold: float = 0.12,
        weakness_threshold: float = 0.12,
        vulnerability_text_threshold: float = 0.55,
        platform_coverage: float = 0.6,
        fidelity_aware: bool = True,
        scorer: str = "coverage",
        max_per_class: int | None = None,
        enable_cache: bool = True,
        max_cache_entries: int | None = DEFAULT_MAX_CACHE_ENTRIES,
        sharded: bool = True,
        max_shards: int = DEFAULT_MAX_SHARDS,
    ) -> None:
        if scorer not in SCORERS:
            raise ValueError(f"unknown scorer {scorer!r}; expected one of {SCORERS}")
        if max_shards < 1:
            raise ValueError(f"max_shards must be positive, got {max_shards}")
        self.pattern_threshold = pattern_threshold
        self.weakness_threshold = weakness_threshold
        self.vulnerability_text_threshold = vulnerability_text_threshold
        self.platform_coverage = platform_coverage
        self.fidelity_aware = fidelity_aware
        self.scorer = scorer
        self.max_per_class = max_per_class
        self.enable_cache = enable_cache
        self.max_cache_entries = max_cache_entries
        self.sharded = sharded
        self.max_shards = max_shards
        self.stats = EngineStats()

        self._indexes: dict[RecordKind, InvertedIndex] = {}
        self._models: dict[RecordKind, TfIdfModel] = {}
        self._shard_maps: dict[RecordKind, ShardMap] = {}
        self._match_protos: dict[str, dict] = {}
        self._platform_tokens: dict[str, frozenset[str]] = {}
        self._platform_vuln_ids: dict[str, tuple[str, ...]] = {}
        self._fingerprint_cache: str | None = None
        self._corpus_load_lock = threading.Lock()
        self._attribute_cache = LruCache(max_cache_entries)
        self._text_cache = LruCache(max_cache_entries)
        self._vulnerability_cache = LruCache(max_cache_entries)

    # -- corpus access ---------------------------------------------------------

    @property
    def corpus(self) -> CorpusStore:
        """The attack-vector corpus (materialized on first use).

        Engines built through :meth:`from_prepared` defer corpus
        reconstruction -- coverage and cosine scoring never touch corpus
        records -- and materialize it here only when a consumer (the jaccard
        scorer, cross-reference traversal, recommendations) needs it.
        Materialization is locked so concurrent first touches under a
        ``workers=N`` fan-out load the corpus once.
        """
        if self._corpus is None:
            with self._corpus_load_lock:
                if self._corpus is None:
                    assert self._corpus_loader is not None
                    self._corpus = self._corpus_loader()
        return self._corpus

    # -- index construction --------------------------------------------------

    def _build_indexes(self, index_payload: dict | None = None) -> None:
        protos: dict[str, dict] = {}
        for kind in RecordKind:
            records = self.corpus.records_of_kind(kind)
            if index_payload is None:
                index = InvertedIndex()
                for record in records:
                    index.add_document(record.identifier, record.text)
            else:
                kind_payload = index_payload.get(kind.value)
                if not isinstance(kind_payload, dict):
                    raise ValueError(
                        f"index snapshot is missing the {kind.value!r} index"
                    )
                index = InvertedIndex.from_dict(kind_payload)
                if set(index.document_ids()) != {r.identifier for r in records}:
                    raise ValueError(
                        f"index snapshot does not match the corpus for {kind.value!r}"
                    )
            for record in records:
                protos[record.identifier] = _record_proto(record)
            self._indexes[kind] = index
            shard_map = None
            if self.sharded:
                shard_map = ShardMap.build(records, self.max_shards)
                self._shard_maps[kind] = shard_map
            # Fitting eagerly precomputes the IDF table, weighted postings,
            # and norms every scorer relies on, so the first query pays no
            # hidden fit cost.
            self._models[kind] = TfIdfModel(
                index, shard_map=shard_map, stats=self.stats
            ).fit()
        self._match_protos = protos
        for vulnerability in self.corpus.vulnerabilities:
            for platform in vulnerability.affected_platforms:
                if platform not in self._platform_tokens:
                    self._platform_tokens[platform] = frozenset(tokenize(platform))
        self._platform_vuln_ids = {
            platform: tuple(
                vulnerability.identifier
                for vulnerability in self.corpus.vulnerabilities_for_platform(platform)
            )
            for platform in self._platform_tokens
        }

    # -- snapshots ------------------------------------------------------------

    def _fingerprint(self) -> str:
        if self._fingerprint_cache is None:
            self._fingerprint_cache = _corpus_fingerprint(self.corpus)
        return self._fingerprint_cache

    def index_snapshot(self) -> dict:
        """A JSON-serializable snapshot of the per-class inverted indexes."""
        payload = {kind.value: self._indexes[kind].to_dict() for kind in RecordKind}
        payload["version"] = SNAPSHOT_VERSION
        payload["corpus_fingerprint"] = self._fingerprint()
        return payload

    def save_index_snapshot(self, path: str | Path) -> Path:
        """Atomically write the index snapshot to a JSON file; returns the path."""
        return atomic_write_text(path, json.dumps(self.index_snapshot()))

    @classmethod
    def from_index_snapshot(
        cls, corpus: CorpusStore, path: str | Path, **kwargs
    ) -> "SearchEngine":
        """Build an engine from a saved index snapshot, skipping tokenization.

        The snapshot must have been produced from the same corpus: document
        ids are validated per record class and a mismatch raises
        :class:`ValueError`.  Results are bit-identical to a freshly built
        engine; only construction time changes.
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(
                f"index snapshot must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported index snapshot version {version!r}; "
                f"expected {SNAPSHOT_VERSION}"
            )
        if payload.get("corpus_fingerprint") != _corpus_fingerprint(corpus):
            raise ValueError(
                "index snapshot does not match the corpus contents"
            )
        return cls(corpus, _index_payload=payload, **kwargs)

    # -- prepared payloads (workspace artifacts) -------------------------------

    def prepared_payload(self) -> dict:
        """Everything needed to rebuild this engine without corpus records.

        The payload bundles the per-class index snapshots with the derived
        scoring tables that normally come out of a corpus pass: per-record
        match prototypes and the platform -> vulnerability-id mapping.  Used
        by :class:`repro.workspace.Workspace`; consumed by
        :meth:`from_prepared`.
        """
        protos = self._match_protos.values()
        return {
            "version": SNAPSHOT_VERSION,
            "corpus_fingerprint": self._fingerprint(),
            "indexes": {
                kind.value: self._indexes[kind].to_dict() for kind in RecordKind
            },
            # Columnar layout: six parallel scalar lists decode much faster
            # than tens of thousands of per-record JSON objects.
            "match_protos": {
                "identifiers": [proto["identifier"] for proto in protos],
                "kinds": [proto["kind"].value for proto in protos],
                "names": [proto["name"] for proto in protos],
                "severities": [proto["severity"] for proto in protos],
                "cvss_scores": [proto["cvss_score"] for proto in protos],
                "network_exploitable": [
                    proto["network_exploitable"] for proto in protos
                ],
            },
            "platform_vulnerabilities": {
                platform: list(ids)
                for platform, ids in self._platform_vuln_ids.items()
            },
            "shards": {
                kind.value: shard_map.to_dict()
                for kind, shard_map in self._shard_maps.items()
            },
        }

    @classmethod
    def from_prepared(
        cls,
        prepared: dict,
        corpus_loader: Callable[[], CorpusStore],
        **kwargs,
    ) -> "SearchEngine":
        """Rebuild an engine from a :meth:`prepared_payload` dict.

        ``corpus_loader`` is called lazily, the first time something touches
        :attr:`corpus` (jaccard scoring, recommendations, snapshots of a
        mutated corpus); association with the coverage or cosine scorer never
        does.  Results are bit-identical to an engine built from the original
        corpus -- the prepared tables *are* the build products, serialized.
        """
        if not isinstance(prepared, dict):
            raise ValueError(
                f"prepared payload must be a JSON object, got {type(prepared).__name__}"
            )
        version = prepared.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported prepared payload version {version!r}; "
                f"expected {SNAPSHOT_VERSION}"
            )
        engine = cls.__new__(cls)
        engine._init_config(**kwargs)
        engine._corpus = None
        engine._corpus_loader = corpus_loader
        try:
            indexes = prepared["indexes"]
            shard_payloads = prepared.get("shards") or {}
            for kind in RecordKind:
                kind_payload = indexes.get(kind.value)
                if isinstance(kind_payload, InvertedIndex):
                    # Hydrated form: the workspace loader already decoded the
                    # binary posting buffers into index objects.
                    index = kind_payload
                elif isinstance(kind_payload, dict):
                    index = InvertedIndex.from_dict(kind_payload)
                else:
                    raise ValueError(
                        f"prepared payload is missing the {kind.value!r} index"
                    )
                engine._indexes[kind] = index
                shard_map = None
                if engine.sharded:
                    shard_payload = shard_payloads.get(kind.value)
                    if shard_payload is not None:
                        shard_map = ShardMap.from_dict(shard_payload)
                        engine._shard_maps[kind] = shard_map
                engine._models[kind] = TfIdfModel(
                    index, shard_map=shard_map, stats=engine.stats
                ).fit()
            columns = prepared["match_protos"]
            kind_table = {kind.value: kind for kind in RecordKind}
            engine._match_protos = {
                identifier: {
                    "identifier": identifier,
                    "kind": kind_table[kind_value],
                    "name": name,
                    "severity": severity,
                    "cvss_score": cvss_score,
                    "network_exploitable": network,
                }
                for identifier, kind_value, name, severity, cvss_score, network in zip(
                    columns["identifiers"],
                    columns["kinds"],
                    columns["names"],
                    columns["severities"],
                    columns["cvss_scores"],
                    columns["network_exploitable"],
                    strict=True,
                )
            }
            engine._platform_vuln_ids = {
                platform: tuple(ids)
                for platform, ids in prepared["platform_vulnerabilities"].items()
            }
        except (KeyError, TypeError, IndexError) as error:
            raise ValueError(f"malformed prepared payload: {error}") from error
        engine._platform_tokens = {
            platform: frozenset(tokenize(platform))
            for platform in engine._platform_vuln_ids
        }
        engine._fingerprint_cache = prepared.get("corpus_fingerprint")
        return engine

    # -- caching ---------------------------------------------------------------

    def _config_key(self) -> tuple:
        return (
            self.scorer,
            self.pattern_threshold,
            self.weakness_threshold,
            self.vulnerability_text_threshold,
            self.platform_coverage,
            self.fidelity_aware,
            self.max_per_class,
        )

    def clear_caches(self) -> None:
        """Drop every cached result (stats counters are kept)."""
        self._attribute_cache.clear()
        self._text_cache.clear()
        self._vulnerability_cache.clear()

    def cache_info(self, stats_snapshot: dict | None = None) -> dict[str, int | None]:
        """Sizes, LRU bounds, eviction totals, and shard-pruning totals.

        ``stats_snapshot`` lets a caller that already took one consistent
        :meth:`EngineStats.snapshot` reuse it, so the pruning counters here
        agree with the stats block published next to them.
        """
        if stats_snapshot is None:
            stats_snapshot = self.stats.snapshot()
        return {
            "attribute_entries": len(self._attribute_cache),
            "text_entries": len(self._text_cache),
            "vulnerability_entries": len(self._vulnerability_cache),
            "attribute_evictions": self._attribute_cache.evictions,
            "text_evictions": self._text_cache.evictions,
            "vulnerability_evictions": self._vulnerability_cache.evictions,
            "max_entries": self._attribute_cache.max_entries,
            "shards_skipped": stats_snapshot["shards_skipped"],
            "candidates_pruned": stats_snapshot["candidates_pruned"],
        }

    def health_info(self) -> dict:
        """A JSON-serializable snapshot of the engine's runtime state.

        This is the payload a long-lived service exposes on its health
        endpoint: configuration, per-class index sizes, the corpus
        fingerprint, the stats counters, and the cache occupancy.  Reading it
        never materializes a lazily attached corpus.  The stats counters are
        read under the stats lock **once** and shared with ``cache_info``,
        so concurrent bumps cannot tear the two blocks apart.
        """
        snapshot = self.stats.snapshot()
        return {
            "scorer": self.scorer,
            "fidelity_aware": self.fidelity_aware,
            "corpus_fingerprint": self._fingerprint_cache,
            "index_documents": {
                kind.value: len(index.document_ids())
                for kind, index in self._indexes.items()
            },
            "stats": snapshot,
            "cache_info": self.cache_info(stats_snapshot=snapshot),
        }

    # -- low-level matching ---------------------------------------------------

    def match_text(
        self, text: str, kind: RecordKind, threshold: float
    ) -> list[Match]:
        """Match free text against one record class (cached when enabled)."""
        cache_key = None
        if self.enable_cache:
            cache_key = (text, kind, threshold, self._config_key())
            cached = self._text_cache.get(cache_key)
            if cached is not None:
                self.stats.bump("text_cache_hits")
                return list(cached)
            self.stats.bump("text_cache_misses")
        if self.scorer == "jaccard":
            scored = self._jaccard_scores(text, kind)
        elif self.scorer == "cosine":
            scored = self._models[kind].score(text)
        else:
            # min_fraction applies the same >=threshold predicate as the
            # filter below, inside the dense accumulator, so sub-threshold
            # candidates are never materialized; the generic filter is then a
            # no-op for this scorer.  Keep the two predicates in sync.
            scored = self._models[kind].coverage(text, min_fraction=threshold)
        matches = [
            self._to_match(identifier, score)
            for identifier, score in scored
            if score >= threshold
        ]
        matches.sort(key=lambda m: (-m.score, m.identifier))
        if self.max_per_class is not None:
            matches = matches[: self.max_per_class]
        if cache_key is not None:
            evicted = self._text_cache.put(cache_key, tuple(matches))
            if evicted:
                self.stats.bump("text_cache_evictions", evicted)
        return matches

    def _jaccard_scores(self, text: str, kind: RecordKind) -> list[tuple[str, float]]:
        scores = []
        for record in self.corpus.records_of_kind(kind):
            score = jaccard_similarity(text, record.text)
            if score > 0.0:
                scores.append((record.identifier, score))
        return scores

    def _platform_matches(self, attribute_tokens: frozenset[str]) -> list[Match]:
        matches: list[Match] = []
        matched_platforms = []
        for platform, tokens in self._platform_tokens.items():
            if not tokens:
                continue
            coverage = len(tokens & attribute_tokens) / len(tokens)
            if coverage >= self.platform_coverage:
                matched_platforms.append((platform, coverage))
        seen: dict[str, float] = {}
        for platform, coverage in matched_platforms:
            for identifier in self._platform_vuln_ids.get(platform, ()):
                previous = seen.get(identifier, 0.0)
                if coverage > previous:
                    seen[identifier] = coverage
        for identifier, coverage in seen.items():
            matches.append(self._to_match(identifier, coverage))
        return matches

    def _to_match(self, identifier: str, score: float) -> Match:
        # Fast construction: cold association materializes tens of thousands
        # of Match objects, and the generated frozen-dataclass __init__
        # (object.__setattr__ per field) is the dominant cost.  Cloning the
        # precomputed prototype dict straight into __dict__ produces an
        # identical instance -- equality, hashing, and repr read the same
        # fields -- and every engine-internal score is >= 0 by construction,
        # which is all __post_init__ would check.
        payload = dict(self._match_protos[identifier])
        payload["score"] = round(score, 6)
        match = object.__new__(Match)
        object.__setattr__(match, "__dict__", payload)
        return match

    # -- attribute / component / system association ---------------------------

    def match_attribute(self, attribute: Attribute) -> AttributeMatches:
        """Associate one attribute with attack patterns, weaknesses, and CVEs.

        Results are cached per attribute value: identical attributes on
        different components (shared platforms, shared protocols) are scored
        once.
        """
        cache_key = None
        if self.enable_cache:
            cache_key = (attribute, self._config_key())
            cached = self._attribute_cache.get(cache_key)
            if cached is not None:
                self.stats.bump("attribute_cache_hits")
                return cached
            self.stats.bump("attribute_cache_misses")
        text = attribute.text
        patterns = self.match_text(text, RecordKind.ATTACK_PATTERN, self.pattern_threshold)
        weaknesses = self.match_text(text, RecordKind.WEAKNESS, self.weakness_threshold)
        vulnerabilities: tuple[Match, ...] = ()
        if not self.fidelity_aware or attribute.is_specific():
            vulnerabilities = self._match_vulnerabilities(text)
        result = AttributeMatches(
            attribute=attribute,
            attack_patterns=tuple(patterns),
            weaknesses=tuple(weaknesses),
            vulnerabilities=vulnerabilities,
        )
        if cache_key is not None:
            evicted = self._attribute_cache.put(cache_key, result)
            if evicted:
                self.stats.bump("attribute_cache_evictions", evicted)
        return result

    def _match_vulnerabilities(self, text: str) -> tuple[Match, ...]:
        cache_key = None
        if self.enable_cache:
            cache_key = (text, self._config_key())
            cached = self._vulnerability_cache.get(cache_key)
            if cached is not None:
                return cached
        attribute_tokens = frozenset(tokenize(text))
        by_id: dict[str, Match] = {}
        for match in self._platform_matches(attribute_tokens):
            by_id[match.identifier] = match
        for match in self.match_text(
            text, RecordKind.VULNERABILITY, self.vulnerability_text_threshold
        ):
            current = by_id.get(match.identifier)
            if current is None or match.score > current.score:
                by_id[match.identifier] = match
        matches = sorted(by_id.values(), key=lambda m: (-m.score, m.identifier))
        if self.max_per_class is not None:
            matches = matches[: self.max_per_class]
        result = tuple(matches)
        if cache_key is not None:
            evicted = self._vulnerability_cache.put(cache_key, result)
            if evicted:
                self.stats.bump("vulnerability_cache_evictions", evicted)
        return result

    def associate_component(self, component: Component) -> ComponentAssociation:
        """Associate every attribute of a component."""
        self.stats.bump("components_scored")
        attribute_matches = tuple(
            self.match_attribute(attribute) for attribute in component.attributes
        )
        return ComponentAssociation(
            component=component, attribute_matches=attribute_matches
        )

    def _associate_components(
        self, components: Sequence[Component], workers: int
    ) -> list[ComponentAssociation]:
        """Score components serially or across a thread pool, in input order.

        The parallel path fans out over *distinct attributes*, not
        components: components share attributes (every platform component
        runs the same OS), so attribute-level tasks give the pool even
        granularity and score each distinct attribute exactly once -- a
        component-level fan-out would let concurrent cache misses duplicate
        that work.  Component assembly then runs serially off the warmed
        cache.  Per-attribute scoring is a pure function of the immutable
        precomputed posting arrays and the caches are lock-protected and
        value-deterministic, so any worker count is bit-identical to the
        serial loop.  With caching disabled the fan-out falls back to
        per-component tasks (there is no cache to warm).

        When an ambient progress sink is installed (see
        :mod:`repro.progress` -- the job engine's streaming path), one
        ``("score", i, n)`` event is emitted per attribute warmed by the
        fan-out and one ``("associate", i, n)`` event per assembled
        component, in completion order.  With no sink installed (every
        synchronous caller) the scoring loops are the exact same statements
        as before; emission costs one ``ContextVar.get()`` per call.
        """
        sink = progress_sink()
        if workers > 1:
            if self.enable_cache:
                attributes: list[Attribute] = []
                seen: set[Attribute] = set()
                for component in components:
                    for attribute in component.attributes:
                        if attribute not in seen:
                            seen.add(attribute)
                            attributes.append(attribute)
                if len(attributes) > 1:
                    with _fast_thread_switching():
                        pool = ThreadPoolExecutor(
                            max_workers=min(workers, len(attributes))
                        )
                        try:
                            for scored, _ in enumerate(
                                pool.map(self.match_attribute, attributes), start=1
                            ):
                                if sink is not None:
                                    sink("score", scored, len(attributes))
                        except BaseException:
                            # A sink-raised cancellation must not sit through
                            # the rest of the fan-out: drop every not-yet-
                            # started task (in-flight ones finish -- their
                            # cached results stay exact for the next caller).
                            pool.shutdown(wait=False, cancel_futures=True)
                            raise
                        finally:
                            pool.shutdown(wait=True)
            elif len(components) > 1:
                with _fast_thread_switching():
                    pool = ThreadPoolExecutor(
                        max_workers=min(workers, len(components))
                    )
                    try:
                        if sink is None:
                            return list(
                                pool.map(self.associate_component, components)
                            )
                        results: list[ComponentAssociation] = []
                        for association in pool.map(
                            self.associate_component, components
                        ):
                            results.append(association)
                            sink("associate", len(results), len(components))
                        return results
                    except BaseException:
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise
                    finally:
                        pool.shutdown(wait=True)
        if sink is None:
            return [self.associate_component(component) for component in components]
        assembled: list[ComponentAssociation] = []
        for component in components:
            assembled.append(self.associate_component(component))
            sink("associate", len(assembled), len(components))
        return assembled

    def associate(self, system: SystemGraph, *, workers: int = 1) -> SystemAssociation:
        """Associate the whole system model (Fig. 1's merge step).

        ``workers`` fans per-component scoring out across a thread pool; the
        merge preserves component order, so any worker count returns the same
        association bit for bit (the parallel-determinism tests pin this).
        """
        components = tuple(self._associate_components(system.components, workers))
        return SystemAssociation(
            system=system,
            components=components,
            scorer=self.scorer,
            engine_config=self._config_key(),
        )

    def associate_many(
        self,
        systems: Iterable[SystemGraph],
        *,
        workers: int = 1,
        baseline: SystemAssociation | None = None,
    ) -> list[SystemAssociation]:
        """Associate several systems in one batch, in input order.

        Every *distinct* component across the whole batch is scored exactly
        once -- what-if sweeps share most components between variants, so the
        batch pays for the edits, not for the copies.  With ``baseline``
        (an association produced under this engine's configuration),
        components unchanged from the same-named baseline component are
        reused without scoring, exactly like :meth:`reassociate`.  The
        distinct components that do need scoring are fanned out across
        ``workers`` threads.  Results are bit-identical to calling
        :meth:`associate` per system.
        """
        systems = list(systems)
        config = self._config_key()
        baseline_by_name: dict[str, ComponentAssociation] = {}
        if baseline is not None and baseline.engine_config == config:
            baseline_by_name = {
                association.component.name: association
                for association in baseline.components
            }
        to_score: list[Component] = []
        slots: dict[Component, int] = {}
        plans: list[list] = []
        for system in systems:
            plan: list = []
            for component in system.components:
                reused = self._reuse_from_baseline(component, baseline_by_name)
                if reused is not None:
                    plan.append(reused)
                    continue
                slot = slots.get(component)
                if slot is None:
                    slot = slots[component] = len(to_score)
                    to_score.append(component)
                plan.append(slot)
            plans.append(plan)
        scored = self._associate_components(to_score, workers)
        return [
            SystemAssociation(
                system=system,
                components=tuple(
                    scored[item] if isinstance(item, int) else item for item in plan
                ),
                scorer=self.scorer,
                engine_config=config,
            )
            for system, plan in zip(systems, plans)
        ]

    def _reuse_from_baseline(
        self,
        component: Component,
        baseline_by_name: dict[str, ComponentAssociation],
    ) -> ComponentAssociation | None:
        """The baseline association to reuse for a component, if any.

        A component qualifies when a same-named baseline component carries the
        identical attribute tuple (matching depends only on attribute text).
        When only non-attribute fields (description, criticality, ...)
        changed, the matches carry over but the component payload must not.
        """
        previous = baseline_by_name.get(component.name)
        if previous is None or previous.component.attributes != component.attributes:
            return None
        self.stats.bump("components_reused")
        if previous.component == component:
            return previous
        return replace(previous, component=component)

    def reassociate(
        self,
        baseline: SystemAssociation,
        variant: SystemGraph,
        *,
        workers: int = 1,
    ) -> SystemAssociation:
        """Associate a variant architecture incrementally against a baseline.

        Components whose attribute tuple is unchanged relative to the
        same-named baseline component reuse the baseline's
        :class:`ComponentAssociation`; everything else -- changed, renamed, or
        added components -- is re-scored (fanned out across ``workers``
        threads when more than one).  The result equals :meth:`associate` on
        the variant, bit for bit, provided the baseline was produced by an
        engine over the same corpus (e.g. this one).  A baseline produced
        under a different configuration -- scorer, thresholds, fidelity mode,
        result cap -- or with no recorded configuration is detected and the
        variant is re-scored in full rather than mixing configurations
        silently.
        """
        if baseline.engine_config != self._config_key():
            return self.associate(variant, workers=workers)
        baseline_by_name = {
            association.component.name: association
            for association in baseline.components
        }
        plan: list = []
        to_score: list[Component] = []
        for component in variant.components:
            reused = self._reuse_from_baseline(component, baseline_by_name)
            if reused is None:
                plan.append(len(to_score))
                to_score.append(component)
            else:
                plan.append(reused)
        scored = self._associate_components(to_score, workers)
        return SystemAssociation(
            system=variant,
            components=tuple(
                scored[item] if isinstance(item, int) else item for item in plan
            ),
            scorer=self.scorer,
            engine_config=self._config_key(),
        )

"""Bounded, thread-safe LRU cache for engine result memoization.

The search engine memoizes per-attribute and per-text match results; one
analyst session over one model needs a few hundred entries, but a long-lived
service scoring many models (the multi-analyst dashboard workload) would grow
an unbounded dict forever.  :class:`LruCache` bounds each result cache with a
least-recently-used eviction policy.

Eviction changes *speed only, never results*: a re-queried evicted key is
recomputed from the immutable precomputed index arrays and yields the exact
same value it had before eviction (the equivalence suite pins this).

All operations take an internal lock, so the cache is safe under the
``workers=N`` parallel association fan-out.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable


class LruCache:
    """A bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    max_entries:
        Maximum number of entries kept; ``None`` means unbounded (the cache
        then degenerates to a locked dict and never evicts).
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.evictions = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Any | None:
        """The cached value (marking it most recently used), or ``None``."""
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> int:
        """Store a value; returns the number of entries evicted (0 or 1)."""
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if self.max_entries is not None:
                while len(self._data) > self.max_entries:
                    self._data.popitem(last=False)
                    evicted += 1
            self.evictions += evicted
        return evicted

    def clear(self) -> None:
        """Drop every entry (the eviction counter is kept)."""
        with self._lock:
            self._data.clear()

"""Tests for the filtering pipeline that manages the result space."""

import pytest

from repro.corpus.schema import RecordKind
from repro.search.filters import (
    FilterPipeline,
    by_exploitability,
    by_kind,
    by_min_score,
    by_network_exposure,
    by_severity,
    top_k,
)


def test_empty_pipeline_is_identity(centrifuge_association):
    filtered = FilterPipeline().apply(centrifuge_association)
    assert filtered.total == centrifuge_association.total
    assert len(filtered.components) == len(centrifuge_association.components)


def test_min_score_filter_reduces_results(centrifuge_association):
    pipeline = FilterPipeline([by_min_score(0.9)])
    filtered = pipeline.apply(centrifuge_association)
    assert filtered.total < centrifuge_association.total
    for component in filtered.components:
        for match in component.unique_matches():
            assert match.score >= 0.9


def test_severity_filter_keeps_only_high_and_critical(centrifuge_association):
    pipeline = FilterPipeline([by_kind(RecordKind.VULNERABILITY), by_severity("High")])
    filtered = pipeline.apply(centrifuge_association)
    for component in filtered.components:
        for match in component.unique_matches():
            assert match.cvss_score is not None
            assert match.cvss_score >= 7.0


def test_severity_filter_rejects_unknown_level():
    with pytest.raises(ValueError):
        by_severity("Catastrophic")


def test_exploitability_filter_drops_local_only_vulnerabilities(centrifuge_association):
    pipeline = FilterPipeline([by_exploitability(require_network=True)])
    filtered = pipeline.apply(centrifuge_association)
    for component in filtered.components:
        for match in component.unique_matches():
            if match.kind is RecordKind.VULNERABILITY:
                assert match.network_exploitable
    assert filtered.total < centrifuge_association.total


def test_kind_filter(centrifuge_association):
    pipeline = FilterPipeline([by_kind(RecordKind.WEAKNESS)])
    filtered = pipeline.apply(centrifuge_association)
    totals = filtered.total_counts()
    assert totals[RecordKind.VULNERABILITY] == 0
    assert totals[RecordKind.ATTACK_PATTERN] == 0
    assert totals[RecordKind.WEAKNESS] > 0


def test_network_exposure_filter(centrifuge_association):
    # Only components within one hop of the corporate entry point keep matches.
    pipeline = FilterPipeline([by_network_exposure(max_distance=1)])
    filtered = pipeline.apply(centrifuge_association)
    assert filtered.component("Control Firewall").total > 0
    assert filtered.component("BPCS Platform").total == 0


def test_top_k_filter_limits_per_component(centrifuge_association):
    pipeline = FilterPipeline([top_k(10)])
    filtered = pipeline.apply(centrifuge_association)
    for component in filtered.components:
        assert component.total <= 10


def test_top_k_requires_positive_count():
    with pytest.raises(ValueError):
        top_k(0)


def test_filters_compose(centrifuge_association):
    pipeline = (
        FilterPipeline()
        .add(by_kind(RecordKind.VULNERABILITY))
        .add(by_severity("Critical"))
        .add(top_k(3))
    )
    filtered = pipeline.apply(centrifuge_association)
    for component in filtered.components:
        assert component.total <= 3
    assert filtered.total <= 3 * len(filtered.components)


def test_reduction_report(centrifuge_association):
    pipeline = FilterPipeline([by_min_score(0.99)])
    report = pipeline.reduction(centrifuge_association)
    assert report["before"] == centrifuge_association.total
    assert report["before"] == report["after"] + report["removed"]
    assert report["removed"] > 0


def test_filtering_preserves_structure(centrifuge_association):
    pipeline = FilterPipeline([by_min_score(0.5)])
    filtered = pipeline.apply(centrifuge_association)
    original = centrifuge_association.component("Programming WS")
    kept = filtered.component("Programming WS")
    assert len(kept.attribute_matches) == len(original.attribute_matches)
    assert [am.attribute.name for am in kept.attribute_matches] == [
        am.attribute.name for am in original.attribute_matches
    ]

"""Tracing seam: ambient trace ids, span recording, slow-request records.

The contextvar contract mirrors :mod:`repro.progress`: nothing threads a
trace through the service API; the HTTP handler (or a test) installs one and
every layer below reads the ambient state.  Pinned here: id validation (a
hostile header token is never honored), span timing bookkeeping, the no-op
cost model outside a trace, and the shape of the structured slow-request
log line.
"""

import pytest

from repro.obs.trace import (
    Span,
    current_trace,
    current_trace_id,
    new_trace_id,
    slow_request_record,
    span,
    trace,
    valid_trace_id,
)


def test_no_ambient_trace_by_default():
    assert current_trace() is None
    assert current_trace_id() is None


def test_trace_installs_and_restores():
    with trace() as active:
        assert current_trace() is active
        assert current_trace_id() == active.trace_id
        with trace("inner-1") as inner:
            assert current_trace_id() == "inner-1"
            assert inner.trace_id == "inner-1"
        assert current_trace_id() == active.trace_id
    assert current_trace_id() is None


def test_provided_id_honored_only_when_valid():
    with trace("job.abc_123-X") as active:
        assert active.trace_id == "job.abc_123-X"
    with trace('evil"\nid') as active:
        assert active.trace_id != 'evil"\nid'
        assert valid_trace_id(active.trace_id) is not None
    with trace("x" * 200) as active:  # over the length bound
        assert len(active.trace_id) == 32


def test_valid_trace_id_rules():
    assert valid_trace_id("abc-123._") == "abc-123._"
    assert valid_trace_id(new_trace_id()) is not None
    assert valid_trace_id(None) is None
    assert valid_trace_id("") is None
    assert valid_trace_id("has space") is None
    assert valid_trace_id("x" * 129) is None
    assert valid_trace_id(42) is None


def test_new_trace_ids_are_distinct_hex():
    first, second = new_trace_id(), new_trace_id()
    assert first != second
    assert len(first) == 32
    int(first, 16)  # hex


def test_spans_record_onto_ambient_trace_in_order():
    with trace("t1") as active:
        with span("parse"):
            pass
        with span("engine_associate") as inner:
            assert inner.name == "engine_associate"
        with span("render"):
            pass
    names = [recorded.name for recorded in active.spans]
    assert names == ["parse", "engine_associate", "render"]
    for recorded in active.spans:
        assert recorded.duration_s is not None
        assert recorded.duration_s >= 0


def test_span_is_shared_noop_outside_trace():
    # One allocation-free sentinel: the instrumented hot path costs a single
    # contextvar read when tracing is off.
    assert span("a") is span("b")
    with span("untraced") as inner:
        assert inner is None


def test_span_records_even_when_body_raises():
    with trace("t2") as active:
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")
    assert [recorded.name for recorded in active.spans] == ["boom"]
    assert active.spans[0].duration_s is not None


def test_slow_request_record_shape():
    first = Span("parse", 0.0)
    first.duration_s = 0.010
    second = Span("engine_associate", 0.0)
    second.duration_s = 1.5
    record = slow_request_record(
        trace_id="abc",
        operation="associate",
        duration_s=1.5345,
        threshold_ms=500.0,
        status=200,
        spans=[first, second],
    )
    assert record == {
        "event": "slow_request",
        "trace_id": "abc",
        "operation": "associate",
        "duration_ms": 1534.5,
        "threshold_ms": 500.0,
        "status": 200,
        "spans": [
            {"name": "parse", "duration_ms": 10.0},
            {"name": "engine_associate", "duration_ms": 1500.0},
        ],
    }

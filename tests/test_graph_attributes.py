"""Tests for the attribute taxonomy."""

import pytest

from repro.graph.attributes import (
    Attribute,
    AttributeKind,
    Fidelity,
    entry_point,
    function,
    hardware,
    operating_system,
    protocol,
    software,
)


def test_attribute_requires_name():
    with pytest.raises(ValueError):
        Attribute("")
    with pytest.raises(ValueError):
        Attribute("   ")


def test_attribute_defaults():
    attribute = Attribute("Windows 7")
    assert attribute.kind is AttributeKind.OTHER
    assert attribute.fidelity is Fidelity.LOGICAL
    assert attribute.version == ""
    assert attribute.tags == ()


def test_attribute_text_combines_all_fields():
    attribute = Attribute(
        "Windows 7",
        description="Microsoft Windows 7 operating system",
        version="SP1",
        tags=("desktop os",),
    )
    assert "Windows 7" in attribute.text
    assert "SP1" in attribute.text
    assert "Microsoft" in attribute.text
    assert "desktop os" in attribute.text


def test_attribute_text_skips_empty_parts():
    attribute = Attribute("MODBUS")
    assert attribute.text == "MODBUS"


def test_fidelity_ordering():
    assert Fidelity.CONCEPTUAL < Fidelity.LOGICAL < Fidelity.IMPLEMENTATION


def test_is_specific_only_at_implementation_fidelity():
    assert not Attribute("x", fidelity=Fidelity.CONCEPTUAL).is_specific()
    assert not Attribute("x", fidelity=Fidelity.LOGICAL).is_specific()
    assert Attribute("x", fidelity=Fidelity.IMPLEMENTATION).is_specific()


def test_with_fidelity_returns_new_attribute():
    original = Attribute("Cisco ASA", fidelity=Fidelity.IMPLEMENTATION, version="9.8")
    abstracted = original.with_fidelity(Fidelity.LOGICAL)
    assert abstracted.fidelity is Fidelity.LOGICAL
    assert abstracted.name == original.name
    assert abstracted.version == original.version
    assert original.fidelity is Fidelity.IMPLEMENTATION


def test_attribute_is_hashable_and_frozen():
    attribute = Attribute("MODBUS")
    assert attribute in {attribute}
    with pytest.raises(AttributeError):
        attribute.name = "other"


@pytest.mark.parametrize(
    ("constructor", "kind"),
    [
        (hardware, AttributeKind.HARDWARE),
        (operating_system, AttributeKind.OPERATING_SYSTEM),
        (software, AttributeKind.SOFTWARE),
        (protocol, AttributeKind.PROTOCOL),
        (function, AttributeKind.FUNCTION),
        (entry_point, AttributeKind.ENTRY_POINT),
    ],
)
def test_convenience_constructors(constructor, kind):
    attribute = constructor("something")
    assert attribute.kind is kind
    assert attribute.name == "something"


def test_convenience_constructors_pass_kwargs():
    attribute = hardware("NI cRIO 9063", fidelity=Fidelity.IMPLEMENTATION, version="2.1")
    assert attribute.fidelity is Fidelity.IMPLEMENTATION
    assert attribute.version == "2.1"

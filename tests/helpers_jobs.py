"""Deterministic test harness for the job engine: no sleeps, no wall time.

Three tools replace the sleep-and-poll patterns the jobs suites used to rely
on:

* :class:`FakeClock` -- an injectable :class:`repro.jobs.clock.Clock` whose
  time only moves when a test calls :meth:`~FakeClock.advance`.  Every
  scheduling decision (wait accounting, quota refill, timestamps) becomes a
  function of the script, not of how fast the machine ran the test,
* :class:`GateService` -- wraps a real service and turns the
  :data:`SLOW_SIMULATE` sentinel request into a *gate*: the call announces
  itself (:meth:`~GateService.wait_started`), then blocks on an event while
  emitting progress points, so cancellation tests hold a job "mid-run" for
  exactly as long as they need.  All waiting is condition-based -- there is
  no ``time.sleep`` anywhere in this harness,
* :class:`ScriptedService` -- a recording stub backend whose operations
  return canned payloads (or raise scripted errors) instantly, for tests
  that exercise pure scheduling behavior and never want real analysis work.

Pair :class:`ScriptedService` + :class:`FakeClock` with
``JobManager(..., start_workers=False)`` (see :func:`stepped_manager`) and
the scheduler becomes single-steppable: each ``manager.run_next()`` executes
exactly one dispatch decision on the calling thread.
"""

from __future__ import annotations

import dataclasses
import threading

from repro.jobs import Clock, JobManager
from repro.progress import progress_sink

#: The duration that marks a simulate request as a gated slow job.  A day of
#: simulated plant time at a 0.5s step is never something a test actually
#: runs; it is the sentinel the jobs suites have always used for "a job that
#: will not finish on its own".
GATE_DURATION_S = 86400.0

#: The canonical gated request (mirrors the historical slow-job payload).
SLOW_SIMULATE = {"scenario": "nominal", "duration_s": GATE_DURATION_S, "dt": 0.5}

#: Progress total the gated loop reports against.
GATE_PROGRESS_TOTAL = 1_000_000


class FakeClock(Clock):
    """A clock that moves only when the test says so."""

    def __init__(self, start: float = 1_700_000_000.0, mono_start: float = 0.0):
        self._time = start
        self._mono = mono_start
        self._lock = threading.Lock()

    def time(self) -> float:
        with self._lock:
            return self._time

    def monotonic(self) -> float:
        with self._lock:
            return self._mono

    def advance(self, seconds: float) -> None:
        """Move both wall and monotonic time forward by ``seconds``."""
        if seconds < 0:
            raise ValueError(f"time only moves forward, got {seconds}")
        with self._lock:
            self._time += seconds
            self._mono += seconds


class GateService:
    """A service wrapper that makes the slow-job sentinel controllable.

    Every operation passes straight through to the wrapped service except a
    ``simulate`` whose ``duration_s`` equals :data:`GATE_DURATION_S`.  That
    call:

    1. increments :attr:`started` and wakes :meth:`wait_started` waiters,
    2. loops emitting a progress point through the ambient sink (which is
       where the job manager's cooperative cancellation raises), waiting on
       an event between points -- a condition wait, never a sleep,
    3. if :meth:`release` is called instead of cancellation, runs a short
       *real* simulation so the job still succeeds with a valid payload.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self._cond = threading.Condition()
        self._release = threading.Event()
        self.started = 0

    # -- test controls ---------------------------------------------------------

    def wait_started(self, count: int = 1, timeout: float = 30.0) -> None:
        """Block until ``count`` gated calls have announced themselves."""
        with self._cond:
            if not self._cond.wait_for(lambda: self.started >= count, timeout):
                raise AssertionError(
                    f"only {self.started}/{count} gated jobs started "
                    f"within {timeout}s"
                )

    def release(self) -> None:
        """Let every current and future gated call finish successfully."""
        self._release.set()

    # -- service surface -------------------------------------------------------

    def simulate(self, request):
        if getattr(request, "duration_s", None) != GATE_DURATION_S:
            return self._inner.simulate(request)
        with self._cond:
            self.started += 1
            self._cond.notify_all()
        sink = progress_sink()
        tick = 0
        while not self._release.is_set():
            tick += 1
            if sink is not None:
                # The manager's sink raises OperationCancelled here once a
                # cancel lands, unwinding the gated call cooperatively.
                sink("simulate", min(tick, GATE_PROGRESS_TOTAL), GATE_PROGRESS_TOTAL)
            self._release.wait(0.05)
        return self._inner.simulate(
            dataclasses.replace(request, duration_s=1.0, dt=0.5)
        )

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class ScriptedResponse:
    """The minimal response shape the job manager needs: ``to_dict()``."""

    def __init__(self, payload: dict) -> None:
        self._payload = dict(payload)

    def to_dict(self) -> dict:
        return dict(self._payload)


class ScriptedService:
    """A recording stub backend: every operation returns instantly.

    ``script`` maps operation names to a behavior:

    * a dict -- returned as the response payload,
    * an Exception instance -- raised,
    * a callable ``f(request)`` -- its return value is the payload (or is
      raised, if it returns an exception).

    Unscripted operations return ``{"operation": name, "call": n}`` where
    ``n`` counts calls across the whole service -- distinct payloads without
    any real work.  Every call is recorded in :attr:`calls` as
    ``(operation, request)``.
    """

    def __init__(self, script: dict | None = None) -> None:
        self.calls: list[tuple[str, object]] = []
        self._script = dict(script or {})
        self._lock = threading.Lock()

    def __getattr__(self, operation: str):
        if operation.startswith("_"):
            raise AttributeError(operation)

        def call(request):
            with self._lock:
                self.calls.append((operation, request))
                count = len(self.calls)
            behavior = self._script.get(operation)
            if isinstance(behavior, Exception):
                raise behavior
            if callable(behavior):
                outcome = behavior(request)
                if isinstance(outcome, Exception):
                    raise outcome
                return ScriptedResponse(outcome)
            if behavior is not None:
                return ScriptedResponse(behavior)
            return ScriptedResponse({"operation": operation, "call": count})

        return call


def stepped_manager(service=None, *, clock=None, **kwargs):
    """A single-steppable manager + its fake clock.

    No worker threads are started: jobs run only when the test calls
    ``manager.run_next()``, one scheduler decision per call.  Returns
    ``(manager, clock)``.
    """
    clock = clock or FakeClock()
    manager = JobManager(
        service if service is not None else ScriptedService(),
        start_workers=False,
        clock=clock,
        **kwargs,
    )
    return manager, clock


def drain_steps(manager, limit: int = 10_000) -> list:
    """Run ``run_next`` until the scheduler is empty; the jobs in run order."""
    ran = []
    while True:
        job = manager.run_next()
        if job is None:
            return ran
        ran.append(job)
        if len(ran) > limit:
            raise AssertionError(f"scheduler still busy after {limit} steps")

"""Tests for the STRIDE baseline."""

from repro.baselines.stride import StrideAnalyzer, StrideCategory
from repro.casestudies.uav import build_uav_model
from repro.graph.model import Component, ComponentKind, Connection, SystemGraph


def test_every_cyber_component_gets_threats(centrifuge_model):
    threats = StrideAnalyzer().analyze(centrifuge_model)
    subjects = {threat.subject for threat in threats}
    assert "BPCS Platform" in subjects
    assert "Programming WS" in subjects
    assert "Control Firewall" in subjects


def test_plant_component_gets_no_threats(centrifuge_model):
    analyzer = StrideAnalyzer()
    threats = analyzer.analyze(centrifuge_model)
    subjects = {threat.subject for threat in threats}
    assert "Centrifuge" not in subjects
    uncovered = analyzer.uncovered_components(centrifuge_model, threats)
    assert "Centrifuge" in uncovered


def test_external_interactors_get_reduced_category_set(centrifuge_model):
    threats = StrideAnalyzer().analyze(centrifuge_model)
    corporate = [t for t in threats if t.subject == "Corporate Network"]
    categories = {t.category for t in corporate}
    assert categories == {StrideCategory.SPOOFING, StrideCategory.REPUDIATION}


def test_processes_get_all_six_categories(centrifuge_model):
    threats = StrideAnalyzer().analyze(centrifuge_model)
    bpcs_categories = {t.category for t in threats if t.subject == "BPCS Platform"}
    assert bpcs_categories == set(StrideCategory)


def test_data_store_categories():
    graph = SystemGraph()
    graph.add_component(Component("historian", kind=ComponentKind.DATA_STORE))
    threats = StrideAnalyzer().analyze(graph)
    categories = {t.category for t in threats}
    assert StrideCategory.SPOOFING not in categories
    assert StrideCategory.TAMPERING in categories


def test_network_dataflows_get_tid_threats():
    graph = SystemGraph()
    graph.add_component(Component("a", kind=ComponentKind.WORKSTATION))
    graph.add_component(Component("b", kind=ComponentKind.CONTROLLER))
    graph.connect(Connection("a", "b", protocol="MODBUS"))
    threats = StrideAnalyzer().analyze(graph)
    flow_threats = [t for t in threats if t.subject_type == "dataflow"]
    assert len(flow_threats) == 3
    assert all("MODBUS" in t.description for t in flow_threats)


def test_physical_couplings_are_invisible_to_stride(centrifuge_model):
    threats = StrideAnalyzer().analyze(centrifuge_model)
    flow_subjects = {t.subject for t in threats if t.subject_type == "dataflow"}
    assert "Centrifuge -> Temperature Sensor" not in flow_subjects


def test_no_threat_mentions_physical_consequence(centrifuge_model):
    threats = StrideAnalyzer().analyze(centrifuge_model)
    assert threats
    assert all(not threat.mentions_physical_consequence for threat in threats)


def test_summary_counts(centrifuge_model):
    analyzer = StrideAnalyzer()
    threats = analyzer.analyze(centrifuge_model)
    summary = analyzer.summary(threats)
    assert sum(summary.values()) == len(threats)
    assert summary[StrideCategory.TAMPERING.value] > 0


def test_analyzer_works_on_the_uav_model():
    threats = StrideAnalyzer().analyze(build_uav_model())
    subjects = {t.subject for t in threats}
    assert "Flight Controller" in subjects
    assert "Airframe" not in subjects

"""Tests for the closed-loop SCADA simulation."""

import numpy as np
import pytest

from repro.cps.control import ControlMode
from repro.cps.hazards import HazardKind
from repro.cps.network import MessageKind
from repro.cps.scada import BPCS, WORKSTATION, OperatorAction, OperatorSchedule, ScadaSimulation


def test_operator_action_validation():
    with pytest.raises(ValueError):
        OperatorAction(-1.0, MessageKind.MODE_COMMAND, {})


def test_operator_schedule_due_window():
    schedule = OperatorSchedule.batch(start_time_s=5.0)
    assert schedule.due(0.0, 5.0) == []
    due = schedule.due(5.0, 7.0)
    assert len(due) == 3
    kinds = {action.kind for action in due}
    assert MessageKind.SETPOINT_WRITE in kinds
    assert MessageKind.MODE_COMMAND in kinds


def test_run_rejects_invalid_horizon():
    with pytest.raises(ValueError):
        ScadaSimulation().run(duration_s=0.0)
    with pytest.raises(ValueError):
        ScadaSimulation().run(duration_s=10.0, dt=0.0)


def test_nominal_batch_reaches_and_holds_setpoint():
    simulation = ScadaSimulation()
    trace = simulation.run(duration_s=420.0, dt=0.5)
    assert len(trace) == 840
    # The paper's regulation requirement: within +/- 1 rpm of the set point.
    assert trace.speed_tracking_error(after_s=150.0) < 1.0
    late = trace.times_s >= 150.0
    assert np.all(np.abs(trace.speeds_rpm[late] - 6000.0) < 5.0)


def test_nominal_batch_is_hazard_free_and_sis_stays_untripped():
    simulation = ScadaSimulation()
    trace = simulation.run(duration_s=420.0, dt=0.5)
    report = trace.hazards()
    assert len(report) == 0
    assert not simulation.sis.tripped
    assert not np.any(trace.sis_tripped)


def test_temperature_regulated_near_setpoint():
    simulation = ScadaSimulation()
    trace = simulation.run(duration_s=420.0, dt=0.5)
    late = trace.times_s >= 300.0
    assert np.all(trace.temperatures_c[late] < 26.0)
    assert np.all(trace.temperatures_c[late] > 14.0)


def test_trace_helpers():
    trace = ScadaSimulation().run(duration_s=120.0, dt=0.5)
    state = trace.final_state()
    assert state.speed_rpm == pytest.approx(trace.speeds_rpm[-1])
    assert trace.max_speed() >= state.speed_rpm
    assert trace.max_temperature() >= trace.temperatures_c[-1] - 1e-9


def test_mode_and_setpoints_arrive_via_bus():
    simulation = ScadaSimulation()
    simulation.run(duration_s=30.0, dt=0.5)
    assert simulation.controller.mode is ControlMode.RUN
    assert simulation.controller.speed_setpoint_rpm == 6000.0
    assert simulation.controller.temperature_setpoint_c == 20.0
    delivered_kinds = {message.kind for message in simulation.bus.delivered}
    assert MessageKind.SETPOINT_WRITE in delivered_kinds
    assert MessageKind.MEASUREMENT in delivered_kinds


def test_bpcs_view_tracks_measurements():
    simulation = ScadaSimulation()
    trace = simulation.run(duration_s=60.0, dt=0.5)
    # The controller's view lags the plant by one cycle but tracks it closely.
    assert np.mean(np.abs(trace.bpcs_speed_view_rpm[10:] - trace.speeds_rpm[9:-1])) < 20.0


def test_custom_schedule_is_respected():
    schedule = OperatorSchedule.batch(speed_rpm=3000.0, temperature_c=18.0, start_time_s=2.0)
    simulation = ScadaSimulation(schedule=schedule)
    trace = simulation.run(duration_s=300.0, dt=0.5)
    late = trace.times_s >= 200.0
    assert np.all(np.abs(trace.speeds_rpm[late] - 3000.0) < 5.0)
    assert simulation.controller.temperature_setpoint_c == 18.0


def test_firewall_blocks_corporate_writes_to_bpcs():
    simulation = ScadaSimulation()
    simulation.run(duration_s=5.0, dt=0.5)
    simulation.bus.send("Corporate Network", BPCS, MessageKind.SETPOINT_WRITE,
                        {"register": "speed_setpoint", "value": 9999.0})
    simulation.bus.deliver()
    assert simulation.controller.speed_setpoint_rpm != 9999.0
    assert simulation.firewall.dropped_count >= 1


def test_workstation_writes_pass_the_firewall():
    simulation = ScadaSimulation()
    simulation.run(duration_s=5.0, dt=0.5)
    simulation.bus.send(WORKSTATION, BPCS, MessageKind.SETPOINT_WRITE,
                        {"register": "speed_setpoint", "value": 1234.0})
    simulation.bus.deliver()
    assert simulation.controller.speed_setpoint_rpm == 1234.0


def test_engineering_write_marks_controller_compromised():
    simulation = ScadaSimulation()
    simulation.run(duration_s=5.0, dt=0.5)
    assert not simulation.controller.compromised
    simulation.bus.send(WORKSTATION, BPCS, MessageKind.ENGINEERING, {"action": "x"})
    simulation.bus.deliver()
    assert simulation.controller.compromised


def test_simulation_is_deterministic():
    first = ScadaSimulation(seed=9).run(duration_s=120.0, dt=0.5)
    second = ScadaSimulation(seed=9).run(duration_s=120.0, dt=0.5)
    assert np.array_equal(first.speeds_rpm, second.speeds_rpm)
    assert np.array_equal(first.temperatures_c, second.temperatures_c)


def test_different_seed_changes_sensor_noise_only_slightly():
    first = ScadaSimulation(seed=1).run(duration_s=120.0, dt=0.5)
    second = ScadaSimulation(seed=2).run(duration_s=120.0, dt=0.5)
    assert not np.array_equal(first.speeds_rpm, second.speeds_rpm)
    assert np.max(np.abs(first.speeds_rpm - second.speeds_rpm)) < 50.0


def test_hazard_evaluation_of_trace_uses_running_mask():
    trace = ScadaSimulation().run(duration_s=60.0, dt=0.5)
    report = trace.hazards()
    assert not report.occurred(HazardKind.PRODUCT_VISCOUS)

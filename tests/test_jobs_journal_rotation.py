"""Job journal retention: compaction, result spill, and replay fidelity.

The JSON-lines journal is append-only and used to grow forever; with
``journal_keep`` set, old terminal jobs are compacted away (atomically) and
oversized result payloads spill to side files so replay stays proportional
to job *count*.  Neither mechanism may change what a replayed history says
about the retained jobs.
"""

from __future__ import annotations

import json

import pytest

from repro.jobs.manager import JobManager
from repro.jobs.store import (
    JobJournal,
    load_spilled_result,
    read_journal,
)
from repro.service.protocol import TERMINAL_JOB_STATES
from repro.service.service import AnalysisService


@pytest.fixture(scope="module")
def service():
    return AnalysisService(max_scale=None)


def _run_jobs(manager, count: int) -> list[str]:
    job_ids = []
    for _ in range(count):
        job = manager.submit("validate", {})
        manager.wait(job.job_id, timeout=30)
        assert job.state == "succeeded"
        job_ids.append(job.job_id)
    return job_ids


# -- compaction ----------------------------------------------------------------


def test_steady_state_journal_is_bounded(tmp_path, service):
    journal = tmp_path / "jobs.jsonl"
    manager = JobManager(
        service, workers=2, journal_path=journal, journal_keep=3
    )
    _run_jobs(manager, 10)
    manager.close()
    jobs_on_disk = {entry["job_id"] for entry in read_journal(journal)}
    # Compaction fires every `journal_keep` finishes, so the steady state
    # holds at most ~2x the retention bound, never the full history.
    assert 3 <= len(jobs_on_disk) <= 6


def test_startup_compaction_trims_an_oversized_journal(tmp_path, service):
    journal = tmp_path / "jobs.jsonl"
    manager = JobManager(service, workers=2, journal_path=journal)  # no bound
    job_ids = _run_jobs(manager, 8)
    manager.close()
    assert len({e["job_id"] for e in read_journal(journal)}) == 8

    restarted = JobManager(
        service, workers=1, journal_path=journal, journal_keep=2
    )
    kept = {entry["job_id"] for entry in read_journal(journal)}
    assert kept == set(job_ids[-2:])  # newest terminal jobs survive
    # Replay happened before compaction, so this process still remembers
    # everything (memory has its own max_history bound)...
    assert {job.job_id for job in restarted.jobs()} >= kept
    assert restarted.stats()["journal_compactions"] == 1
    assert restarted.stats()["journal_keep"] == 2
    restarted.close()

    # ...but the next restart replays exactly the compacted retention window.
    second = JobManager(service, workers=1, journal_path=journal, journal_keep=2)
    assert {job.job_id for job in second.jobs()} == kept
    for job in second.jobs():
        assert job.state == "succeeded"
        assert job.replayed
    second.close()


def test_compaction_keeps_every_nonterminal_line(tmp_path):
    """Lines of jobs that never finished survive any compaction."""
    journal_path = tmp_path / "jobs.jsonl"
    journal = JobJournal(journal_path)
    for index in range(5):
        journal.append(
            "submitted", job_id=f"job-t{index}", operation="validate",
            request={}, created_at=float(index),
        )
        journal.append_finished(
            job_id=f"job-t{index}", state="succeeded", finished_at=float(index),
            result={"ok": index}, error=None,
        )
    journal.append(
        "submitted", job_id="job-hung", operation="validate",
        request={}, created_at=99.0,
    )
    journal.append("started", job_id="job-hung", started_at=99.5)
    dropped = journal.compact(1, TERMINAL_JOB_STATES)
    journal.close()
    assert dropped == 4
    entries = read_journal(journal_path)
    kept_ids = {entry["job_id"] for entry in entries}
    assert kept_ids == {"job-t4", "job-hung"}
    # The hung job keeps both its lines for the interruption marker.
    assert sum(1 for e in entries if e["job_id"] == "job-hung") == 2


def test_compaction_is_a_noop_within_the_bound(tmp_path):
    journal_path = tmp_path / "jobs.jsonl"
    journal = JobJournal(journal_path)
    journal.append_finished(
        job_id="job-a", state="succeeded", finished_at=1.0, result=None, error=None
    )
    before = journal_path.read_bytes()
    assert journal.compact(5, TERMINAL_JOB_STATES) == 0
    journal.close()
    assert journal_path.read_bytes() == before


# -- result spill --------------------------------------------------------------


def test_oversized_results_spill_and_replay(tmp_path, service):
    journal = tmp_path / "jobs.jsonl"
    manager = JobManager(service, workers=1, journal_path=journal)
    manager._journal.max_inline_result_bytes = 256  # force the spill
    job = manager.submit("export", {})  # GraphML result: multi-KB
    manager.wait(job.job_id, timeout=30)
    assert job.state == "succeeded"
    live_result = dict(job.result)
    manager.close()

    spill_dir = tmp_path / "jobs.jsonl.d"
    assert list(spill_dir.iterdir()) == [spill_dir / f"{job.job_id}.result.json"]
    finished = [e for e in read_journal(journal) if e["kind"] == "finished"][-1]
    assert finished["result"] is None
    assert finished["result_spill"] == f"{job.job_id}.result.json"
    assert load_spilled_result(journal, finished) == live_result

    restarted = JobManager(service, workers=1, journal_path=journal)
    assert restarted.get(job.job_id).result == live_result
    assert restarted.stats()["spilled_results"] == 0  # counter is per-process
    restarted.close()


def test_missing_spill_file_degrades_to_resultless_replay(tmp_path, service):
    journal = tmp_path / "jobs.jsonl"
    manager = JobManager(service, workers=1, journal_path=journal)
    manager._journal.max_inline_result_bytes = 256
    job = manager.submit("export", {})
    manager.wait(job.job_id, timeout=30)
    manager.close()
    (tmp_path / "jobs.jsonl.d" / f"{job.job_id}.result.json").unlink()

    restarted = JobManager(service, workers=1, journal_path=journal)
    replayed = restarted.get(job.job_id)
    assert replayed.state == "succeeded"  # history survives...
    assert replayed.result is None  # ...only the oversized payload is gone
    restarted.close()


def test_spill_reference_cannot_escape_the_spill_dir(tmp_path):
    entry = {"result_spill": "../../etc/passwd", "result": None}
    assert load_spilled_result(tmp_path / "jobs.jsonl", entry) is None


def test_compaction_deletes_dropped_spill_files(tmp_path):
    journal_path = tmp_path / "jobs.jsonl"
    journal = JobJournal(journal_path, max_inline_result_bytes=8)
    for index in range(3):
        journal.append_finished(
            job_id=f"job-s{index}", state="succeeded", finished_at=float(index),
            result={"payload": "x" * 64}, error=None,
        )
    assert journal.spilled_results == 3
    journal.compact(1, TERMINAL_JOB_STATES)
    journal.close()
    remaining = sorted(p.name for p in (tmp_path / "jobs.jsonl.d").iterdir())
    assert remaining == ["job-s2.result.json"]


# -- knobs ---------------------------------------------------------------------


def test_journal_keep_validation(service):
    with pytest.raises(ValueError, match="journal_keep"):
        JobManager(service, journal_keep=0)


def test_serve_flag_parses():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--workspace", "x.cpsecws", "--journal-keep", "17"]
    )
    assert args.journal_keep == 17
    defaults = build_parser().parse_args(["serve", "--workspace", "x.cpsecws"])
    assert defaults.journal_keep == 256


def test_healthz_surfaces_retention_stats(tmp_path, service):
    manager = JobManager(
        service, workers=1, journal_path=tmp_path / "j.jsonl", journal_keep=9
    )
    stats = manager.stats()
    assert stats["journal_keep"] == 9
    assert stats["journal_compactions"] == 0
    assert stats["spilled_results"] == 0
    manager.close()

"""Tests for the curated seed corpus."""

from repro.corpus.schema import RecordKind
from repro.corpus.seed import (
    seed_attack_patterns,
    seed_corpus,
    seed_vulnerabilities,
    seed_weaknesses,
)


def test_seed_corpus_is_nontrivial(seed_only_corpus):
    counts = seed_only_corpus.counts()
    assert counts[RecordKind.ATTACK_PATTERN] >= 20
    assert counts[RecordKind.WEAKNESS] >= 30
    assert counts[RecordKind.VULNERABILITY] >= 15


def test_seed_contains_the_papers_flagship_weakness(seed_only_corpus):
    cwe78 = seed_only_corpus.get("CWE-78")
    assert "command" in cwe78.name.lower()
    # The paper's scenario: CWE-78 exploited by CAPEC-88 against control platforms.
    patterns = seed_only_corpus.patterns_for_weakness("CWE-78")
    assert any(p.identifier == "CAPEC-88" for p in patterns)


def test_seed_covers_demonstration_platforms(seed_only_corpus):
    platforms = set(seed_only_corpus.platforms())
    assert "cisco asa" in platforms
    assert "microsoft windows 7" in platforms
    assert "ni labview" in platforms
    assert "ni crio-9063" in platforms


def test_seed_identifiers_are_unique():
    patterns = seed_attack_patterns()
    weaknesses = seed_weaknesses()
    vulnerabilities = seed_vulnerabilities()
    for records in (patterns, weaknesses, vulnerabilities):
        identifiers = [r.identifier for r in records]
        assert len(identifiers) == len(set(identifiers))


def test_seed_cross_references_resolve(seed_only_corpus):
    # Every CWE referenced by a seed vulnerability that starts with a low
    # number (a real CWE) should exist in the seed weaknesses.
    known = {w.identifier for w in seed_only_corpus.weaknesses}
    for vulnerability in seed_only_corpus.vulnerabilities:
        for cwe in vulnerability.cwe_ids:
            assert cwe in known, f"{vulnerability.identifier} references missing {cwe}"


def test_seed_patterns_reference_existing_weaknesses_where_possible(seed_only_corpus):
    known = {w.identifier for w in seed_only_corpus.weaknesses}
    resolved = 0
    for pattern in seed_only_corpus.attack_patterns:
        resolved += sum(1 for cwe in pattern.related_weaknesses if cwe in known)
    assert resolved >= 20


def test_seed_vulnerabilities_have_valid_cvss(seed_only_corpus):
    for vulnerability in seed_only_corpus.vulnerabilities:
        assert 0.0 <= vulnerability.base_score <= 10.0
        assert vulnerability.severity in {"None", "Low", "Medium", "High", "Critical"}


def test_triton_style_vulnerability_present(seed_only_corpus):
    vulnerability = seed_only_corpus.get("CVE-2018-7522")
    assert "safety" in vulnerability.description.lower()


def test_seed_corpus_builds_fresh_each_call():
    first = seed_corpus()
    second = seed_corpus()
    assert first is not second
    assert len(first) == len(second)

"""End-to-end ``cpsec serve --workers N`` process tests.

The pre-forked server is supervised process topology -- fork, shared
listening socket, crash restart, SIGTERM fan-out -- none of which can be
meaningfully tested in-process, so these run the real console entry point as
a subprocess, like ``test_cli_serve``.  The load-bearing claim: ``--workers
2`` is *byte-identical* to ``--workers 1`` for every response, because the
workers share one read-only mmap artifact and results are a pure function
of it.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.workspace import Workspace

SCALE = 0.02

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: One representative raw payload per pure operation (canonical-JSON bodies
#: give byte-comparable responses across servers).
OPERATION_PAYLOADS = {
    "associate": {"scale": SCALE},
    "table1": {"scale": SCALE},
    "whatif": {"scale": SCALE},
    "chains": {"scale": SCALE, "limit": 3},
    "topology": {},
    "recommend": {"scale": SCALE, "per_component": 2},
    "simulate": {"scenario": "triton-like-sis-bypass"},
    "consequences": {"record": "CWE-78", "duration_s": 300.0},
    "validate": {},
    "export": {},
}


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("workers") / "serve.cpsecws"
    Workspace.build(scale=SCALE).save(path)
    return path


def _spawn_serve(artifact: Path, *extra: str) -> tuple[subprocess.Popen, str, list]:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--workspace", f"main={artifact}",
            "--port", "0",
            *extra,
        ],
        cwd=artifact.parent,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines: list[str] = []

    def _pump() -> None:
        for line in process.stdout:
            lines.append(line.rstrip("\n"))

    threading.Thread(target=_pump, daemon=True).start()
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        banner = next((line for line in lines if "serving analysis service" in line), None)
        if banner:
            url = banner.split("on ", 1)[1].split(" ", 1)[0]
            return process, url, lines
        if process.poll() is not None:
            break
        time.sleep(0.1)
    process.kill()
    raise AssertionError(f"serve did not come up; output so far: {lines}")


def _wait_for_workers(lines: list, count: int, timeout: float = 60.0) -> list[int]:
    """PIDs of the first ``count`` started workers from the supervisor log."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pids = [
            int(match.group(1))
            for line in list(lines)
            if (match := re.search(r"worker (\d+) started", line))
        ]
        if len(pids) >= count:
            return pids[:count]
        time.sleep(0.1)
    raise AssertionError(f"only saw workers in: {lines}")


def _post(url: str, operation: str, payload: dict) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    request = urllib.request.Request(
        f"{url}/v1/{operation}",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return response.read()


def _terminate(process: subprocess.Popen) -> int:
    process.send_signal(signal.SIGTERM)
    try:
        return process.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        process.kill()
        raise


@pytest.mark.slow
def test_two_workers_answer_byte_identically_to_one(artifact):
    """Every operation's response bytes match between --workers 1 and 2."""
    single, single_url, _ = _spawn_serve(artifact, "--job-journal", "none")
    multi, multi_url, multi_lines = _spawn_serve(
        artifact, "--workers", "2", "--job-journal", "none"
    )
    try:
        _wait_for_workers(multi_lines, 2)
        for operation, payload in OPERATION_PAYLOADS.items():
            reference = _post(single_url, operation, payload)
            # Twice per operation: with kernel accept balancing both workers
            # see traffic across the sweep, and every byte must match.
            assert _post(multi_url, operation, payload) == reference, operation
            assert _post(multi_url, operation, payload) == reference, operation
    finally:
        assert _terminate(multi) == 0
        assert _terminate(single) == 0


@pytest.mark.slow
def test_crashed_worker_is_restarted_and_serving_continues(artifact):
    process, url, lines = _spawn_serve(
        artifact, "--workers", "2", "--job-journal", "none"
    )
    try:
        pids = _wait_for_workers(lines, 2)
        reference = _post(url, "topology", {})
        os.kill(pids[0], signal.SIGKILL)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if any("restarting slot" in line for line in list(lines)):
                break
            time.sleep(0.1)
        else:
            raise AssertionError(f"no restart observed: {lines}")
        _wait_for_workers(lines, 3)  # the replacement announced itself
        # Service stayed up through the crash and stays byte-identical.
        assert _post(url, "topology", {}) == reference
    finally:
        assert _terminate(process) == 0
    output = "\n".join(lines)
    assert re.search(r"worker \d+ exited \(-9\); restarting slot 0", output)
    assert "shutdown complete (all workers drained, journals flushed)" in output


@pytest.mark.slow
def test_sigterm_drains_every_worker_and_their_journals(artifact, tmp_path):
    journal = tmp_path / "jobs.jsonl"
    process, url, lines = _spawn_serve(
        artifact, "--workers", "2", "--job-journal", str(journal)
    )
    try:
        _wait_for_workers(lines, 2)
        # The jobs tier is per-worker (each worker owns its manager and
        # journal), so the submit and its follow-ups must ride ONE
        # keep-alive connection -- the kernel balances *accepts*, so a
        # single TCP connection pins a single worker.
        host, port = url.split("//", 1)[1].split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=120)

        def call(method: str, path: str, payload=None) -> dict:
            body = None if payload is None else json.dumps(payload).encode()
            connection.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status in (200, 202), (path, response.status)
            return json.loads(response.read())

        job = call(
            "POST", "/v1/jobs",
            {"operation": "associate", "request": {"scale": SCALE}},
        )
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            record = call("GET", f"/v1/jobs/{job['job_id']}")
            if record["state"] in ("succeeded", "failed", "cancelled"):
                break
            time.sleep(0.2)
        connection.close()
        assert record["state"] == "succeeded"
    finally:
        assert _terminate(process) == 0
    output = "\n".join(lines)
    assert "shutdown complete (all workers drained, journals flushed)" in output
    # Per-worker journals: slot suffixes keep two processes from interleaving
    # writes into one file; the submitted job landed in exactly one of them.
    journals = sorted(tmp_path.glob("jobs.jsonl.w*"))
    assert len(journals) == 2
    contents = [path.read_text() for path in journals]
    assert sum(job["job_id"] in text for text in contents) == 1


def test_serve_rejects_zero_workers(artifact):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--workspace", f"main={artifact}",
            "--port", "0", "--workers", "0",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2
    assert "--workers must be >= 1" in result.stderr

"""Unit tests for the deterministic fault-injection seam (repro.faults).

The seam's contract is load-bearing for the whole chaos tier: disarmed it
must be a single boolean check (the byte-identity guarantee of every
instrumented production path), armed it must fire exactly as scripted --
bounded by ``times``, observable through ``trips``, and arm-able from the
``CPSEC_FAULTS`` environment for subprocess tests.
"""

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _clean_seam():
    faults.reset()
    yield
    faults.reset()


def test_disarmed_trip_is_a_no_op():
    faults.trip("journal.append")  # must not raise
    assert faults.trips("journal.append") == 0
    assert faults.armed_points() == []


def test_armed_point_raises_oserror_by_default():
    faults.arm("journal.append")
    with pytest.raises(OSError):
        faults.trip("journal.append")
    assert faults.trips("journal.append") == 1
    # Unbounded: still armed, fires again.
    with pytest.raises(OSError):
        faults.trip("journal.append")
    assert faults.trips("journal.append") == 2


def test_other_points_stay_disarmed():
    faults.arm("journal.append")
    faults.trip("artifact.load")  # must not raise
    assert faults.trips("artifact.load") == 0


def test_exception_instance_arg_is_raised_verbatim():
    boom = OSError("disk full")
    faults.arm("journal.append", "error", arg=boom)
    with pytest.raises(OSError) as excinfo:
        faults.trip("journal.append")
    assert excinfo.value is boom


def test_runtimeerror_mode():
    faults.arm("op.simulate", "runtimeerror")
    with pytest.raises(RuntimeError):
        faults.trip("op.simulate")


def test_times_budget_disarms_after_exhaustion():
    faults.arm("op.associate", "error", times=2)
    for _ in range(2):
        with pytest.raises(OSError):
            faults.trip("op.associate")
    faults.trip("op.associate")  # budget spent: disarmed again
    assert faults.trips("op.associate") == 2
    assert faults.armed_points() == []


def test_slow_mode_proceeds_after_sleeping():
    faults.arm("op.topology", "slow", arg=0.0)
    faults.trip("op.topology")  # returns instead of raising
    assert faults.trips("op.topology") == 1


def test_mangle_returns_none_when_disarmed_or_wrong_mode():
    assert faults.mangle("journal.torn", "payload") is None
    faults.arm("journal.torn", "error")
    assert faults.mangle("journal.torn", "payload") is None


def test_mangle_torn_truncates_the_text():
    faults.arm("journal.torn", "torn", times=1)
    line = '{"v":1,"kind":"submitted"}'
    torn = faults.mangle("journal.torn", line)
    assert torn == line[: len(line) // 2]
    assert faults.mangle("journal.torn", line) is None  # budget spent


def test_armed_context_manager_disarms_on_exit():
    with faults.armed("journal.append"):
        assert faults.armed_points() == ["journal.append"]
        with pytest.raises(OSError):
            faults.trip("journal.append")
    assert faults.armed_points() == []
    faults.trip("journal.append")  # disarmed again


def test_reset_clears_points_and_counters():
    faults.arm("journal.append")
    with pytest.raises(OSError):
        faults.trip("journal.append")
    faults.reset()
    assert faults.armed_points() == []
    assert faults.trips("journal.append") == 0


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        faults.arm("journal.append", "explode")


def test_nonpositive_times_rejected():
    with pytest.raises(ValueError):
        faults.arm("journal.append", times=0)


def test_load_env_arms_points_with_arg_and_times():
    count = faults.load_env("journal.append:oserror,op.simulate:slow:0.01:3")
    assert count == 2
    assert faults.armed_points() == ["journal.append", "op.simulate"]
    with pytest.raises(OSError):
        faults.trip("journal.append")
    faults.trip("op.simulate")
    assert faults.trips("op.simulate") == 1


def test_load_env_empty_arg_slot_skips_to_times():
    faults.load_env("handler.crash:error::1")
    with pytest.raises(OSError):
        faults.trip("handler.crash")
    faults.trip("handler.crash")  # times=1: budget spent
    assert faults.trips("handler.crash") == 1


def test_load_env_empty_value_arms_nothing():
    assert faults.load_env("") == 0
    assert faults.load_env("  ,  ") == 0
    assert faults.armed_points() == []


@pytest.mark.parametrize("entry", ["justapoint", "a:b:c:d:e", "p:slow:notafloat"])
def test_load_env_malformed_entry_fails_loudly(entry):
    with pytest.raises(ValueError):
        faults.load_env(entry)

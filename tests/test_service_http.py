"""HTTP transport tests: the server, the client, and transport equivalence.

The acceptance bar for the service redesign: for every operation, the
in-process path and the HTTP path produce **byte-identical** response JSON
for the same request, and every CLI subcommand prints the same bytes whether
it ran in-process or against a live ``cpsec serve`` instance.
"""

import json
import threading
import urllib.request

import pytest

from repro.cli import main
from repro.service import (
    AnalysisService,
    AssociateRequest,
    ChainsRequest,
    ConsequencesRequest,
    ExportRequest,
    RecommendRequest,
    ServiceClient,
    ServiceError,
    SimulateRequest,
    Table1Request,
    TopologyRequest,
    ValidateRequest,
    WhatIfRequest,
    canonical_json,
    start_server,
)

SCALE = 0.02

#: One representative request per operation, exercised on both transports.
REQUESTS = {
    "associate": AssociateRequest(scale=SCALE),
    "table1": Table1Request(scale=SCALE),
    "whatif": WhatIfRequest(scale=SCALE),
    "chains": ChainsRequest(scale=SCALE, limit=3),
    "topology": TopologyRequest(),
    "recommend": RecommendRequest(scale=SCALE, per_component=2),
    "simulate": SimulateRequest(scenario="nominal", duration_s=120.0),
    "consequences": ConsequencesRequest(record="CWE-78", duration_s=120.0),
    "validate": ValidateRequest(),
    "export": ExportRequest(),
}


@pytest.fixture(scope="module")
def live():
    """One shared warm service behind a real HTTP server on a free port."""
    service = AnalysisService()
    server = start_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield service, ServiceClient(f"http://{host}:{port}"), f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.mark.parametrize("operation", sorted(REQUESTS))
def test_http_wire_bytes_equal_in_process_json(live, operation):
    service, client, _ = live
    request = REQUESTS[operation]
    local = getattr(service, operation)(request)
    wire = client.call_raw(operation, request.to_dict())
    assert wire.decode("utf-8") == canonical_json(local.to_dict())


@pytest.mark.parametrize("operation", sorted(REQUESTS))
def test_typed_client_round_trips_every_operation(live, operation):
    service, client, _ = live
    request = REQUESTS[operation]
    local = getattr(service, operation)(request)
    remote = getattr(client, operation)(request)
    assert remote == local


def test_healthz_endpoint(live):
    _, client, url = live
    payload = client.health()
    assert payload["status"] == "ok"
    assert payload["schema_version"] == 1
    with urllib.request.urlopen(f"{url}/healthz", timeout=10) as response:
        assert response.status == 200
        assert json.loads(response.read())["status"] == "ok"


def test_unknown_operation_is_404(live):
    _, client, _ = live
    with pytest.raises(ServiceError) as excinfo:
        client.call_raw("shard", {})
    assert excinfo.value.status == 404
    assert excinfo.value.code == "unknown_operation"


def test_malformed_json_body_is_400(live):
    _, _, url = live
    request = urllib.request.Request(
        f"{url}/v1/associate", data=b"{not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400
    body = json.loads(excinfo.value.read())
    assert body["error"]["code"] == "malformed_json"


def test_unknown_request_field_is_rejected_over_http(live):
    _, client, _ = live
    with pytest.raises(ServiceError) as excinfo:
        client.call_raw("associate", {"scale": SCALE, "shard": 1})
    assert excinfo.value.code == "unknown_fields"


def test_service_errors_cross_the_wire(live):
    _, client, _ = live
    with pytest.raises(ServiceError) as excinfo:
        client.simulate(SimulateRequest(scenario="nope"))
    assert excinfo.value.status == 404
    assert excinfo.value.code == "unknown_scenario"
    assert "triton-like-sis-bypass" in excinfo.value.details["known_scenarios"]


def test_get_on_unknown_path_is_404(live):
    _, _, url = live
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(f"{url}/v1/associate", timeout=10)
    assert excinfo.value.code == 404


CLI_COMMANDS = [
    ["associate", "--scale", str(SCALE)],
    ["table1", "--scale", str(SCALE)],
    ["whatif", "--scale", str(SCALE)],
    ["chains", "--scale", str(SCALE), "--limit", "3"],
    ["topology"],
    ["recommend", "--scale", str(SCALE), "--per-component", "2"],
    ["simulate", "--scenario", "nominal", "--duration", "120"],
    ["consequences", "--record", "CWE-78", "--duration", "120"],
    ["validate"],
]


@pytest.mark.parametrize("argv", CLI_COMMANDS, ids=lambda argv: argv[0])
def test_cli_prints_identical_bytes_in_process_and_via_url(live, argv, capsys):
    _, _, url = live
    in_process_code = main(argv)
    in_process = capsys.readouterr().out
    remote_code = main(argv + ["--url", url])
    remote = capsys.readouterr().out
    assert remote_code == in_process_code
    assert remote == in_process


def test_cli_export_writes_identical_files_via_url(live, tmp_path, capsys):
    _, _, url = live
    local_path = tmp_path / "local.graphml"
    remote_path = tmp_path / "remote.graphml"
    assert main(["export", "--output", str(local_path)]) == 0
    assert main(["export", "--output", str(remote_path), "--url", url]) == 0
    capsys.readouterr()
    assert remote_path.read_bytes() == local_path.read_bytes()


def test_cli_unreachable_url_exits_2(capsys):
    # Port 9 (discard) on localhost is not listening in the test environment.
    code = main(["topology", "--url", "http://127.0.0.1:9"])
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot reach service" in captured.err

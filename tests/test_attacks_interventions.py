"""Tests for the attack interventions acting on the closed-loop simulation."""

import numpy as np
import pytest

from repro.attacks.dos import FloodAttack, MessageDropAttack
from repro.attacks.injection import (
    CommandInjectionAttack,
    EngineeringWriteAttack,
    SetpointInjectionAttack,
)
from repro.attacks.scenarios import SisDisableAttack
from repro.attacks.spoofing import (
    MeasurementSpoofingAttack,
    ReplayMeasurementAttack,
    SensorSpoofingAttack,
)
from repro.cps.hazards import HazardKind
from repro.cps.intervention import Intervention
from repro.cps.network import MessageKind
from repro.cps.scada import BPCS, SIS, ScadaSimulation


def run_with(interventions, duration=420.0):
    simulation = ScadaSimulation(interventions=interventions)
    trace = simulation.run(duration_s=duration, dt=0.5)
    return simulation, trace


def test_intervention_activation_window():
    intervention = Intervention(start_time_s=10.0, duration_s=5.0)
    assert not intervention.active(9.9)
    assert intervention.active(10.0)
    assert intervention.active(15.0)
    assert not intervention.active(15.1)
    open_ended = Intervention(start_time_s=10.0)
    assert open_ended.active(1e6)


def test_default_intervention_is_inert():
    simulation, trace = run_with([Intervention(start_time_s=0.0)], duration=120.0)
    assert not trace.hazards().events
    assert not simulation.sis.tripped


def test_setpoint_injection_raises_speed_until_sis_trips():
    simulation, trace = run_with([SetpointInjectionAttack(start_time_s=120.0, value=9_800.0)])
    assert trace.max_speed() > 9_000.0
    assert simulation.sis.tripped
    assert trace.hazards().occurred(HazardKind.SPEED_DEVIATION)


def test_engineering_write_compromises_controller():
    simulation, _ = run_with([EngineeringWriteAttack(start_time_s=60.0)], duration=120.0)
    assert simulation.controller.compromised


def test_command_injection_alone_is_caught_by_the_sis():
    simulation, trace = run_with([CommandInjectionAttack(start_time_s=120.0)])
    assert simulation.sis.tripped
    assert simulation.controller.compromised
    report = trace.hazards()
    # Product is lost but the plant stays below the instability limit.
    assert report.product_lost
    assert not report.occurred(HazardKind.THERMAL_RUNAWAY)


def test_sis_disable_attack_disables_the_safety_function():
    simulation, _ = run_with([SisDisableAttack(start_time_s=30.0)], duration=60.0)
    assert not simulation.sis.enabled


def test_sensor_spoofing_blinds_both_consumers():
    attack = SensorSpoofingAttack(start_time_s=60.0, sensor="temperature", value=20.0)
    simulation, trace = run_with([attack], duration=120.0)
    assert simulation.temperature_sensor.spoofed
    late = trace.times_s > 70.0
    assert np.all(np.abs(trace.bpcs_temperature_view_c[late] - 20.0) < 1e-9)


def test_sensor_spoofing_unknown_sensor_rejected():
    attack = SensorSpoofingAttack(start_time_s=0.0, sensor="pressure")
    with pytest.raises(ValueError):
        attack.on_activate(ScadaSimulation(), 0.0)


def test_sensor_spoof_clears_after_duration():
    attack = SensorSpoofingAttack(start_time_s=10.0, duration_s=20.0, sensor="temperature", value=5.0)
    simulation, _ = run_with([attack], duration=60.0)
    assert not simulation.temperature_sensor.spoofed


def test_measurement_mitm_only_affects_target_receiver():
    attack = MeasurementSpoofingAttack(start_time_s=30.0, variable="temperature",
                                       value=20.0, receiver=BPCS)
    simulation, trace = run_with([attack], duration=90.0)
    late = trace.times_s > 40.0
    assert np.all(np.abs(trace.bpcs_temperature_view_c[late] - 20.0) < 1e-9)
    # The SIS still sees (noisy) reality, not the constant.
    assert abs(simulation._sis_view["temperature"] - 20.0) > 1e-6


def test_replay_attack_blinds_the_sis_to_later_excursions():
    # Replay captured (nominal) measurements to the SIS, then drive the rotor
    # to its maximum through the compromised controller: the SIS keeps seeing
    # the pre-attack speed and never trips.
    replay = ReplayMeasurementAttack(start_time_s=100.0, receiver=SIS, capture_window_s=10.0)
    injection = CommandInjectionAttack(start_time_s=140.0)
    simulation, trace = run_with([replay, injection], duration=300.0)
    assert trace.max_speed() > 9_500.0
    assert simulation._sis_view["speed"] < 7_000.0
    assert not simulation.sis.tripped


def test_message_drop_attack_counts_drops_and_degrades_view():
    attack = MessageDropAttack(start_time_s=60.0, receiver=BPCS,
                               kinds=(MessageKind.MEASUREMENT,))
    simulation, trace = run_with([attack], duration=120.0)
    assert attack.dropped > 0
    # The controller's view freezes at the last delivered measurement.
    late_view = trace.bpcs_speed_view_rpm[-1]
    assert late_view == pytest.approx(trace.bpcs_speed_view_rpm[-10])


def test_flood_attack_validation_and_losses():
    with pytest.raises(ValueError):
        FloodAttack(loss_rate=1.5)
    attack = FloodAttack(start_time_s=30.0, loss_rate=0.9)
    simulation, _ = run_with([attack], duration=90.0)
    assert attack.dropped > 0
    assert simulation.firewall.dropped_count > 0  # the junk traffic is blocked

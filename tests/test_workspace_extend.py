"""Incremental workspace ingest: delta frames, exactness, and the service op.

``Workspace.extend`` must be an *exact* shortcut: an engine over an extended
workspace -- whether extended in memory, or loaded back from an artifact
with appended delta frames -- must return bit-identical associations to a
fresh monolithic engine built from scratch over the merged corpus, across
every scorer, both fidelity modes, and both case studies.  The service's
``extend`` operation layers typed errors, artifact swapping, and response-
cache invalidation on top.
"""

from __future__ import annotations

import json
import threading

import pytest

from helpers_equivalence import association_signature
from repro.casestudies.centrifuge import build_centrifuge_model
from repro.casestudies.uav import build_uav_model
from repro.corpus.synthesis import build_corpus, build_extension_corpus
from repro.search.engine import SCORERS, SearchEngine
from repro.service.client import ServiceClient
from repro.service.http import start_server
from repro.service.protocol import (
    AssociateRequest,
    ExtendRequest,
    ServiceError,
    canonical_json,
)
from repro.service.service import AnalysisService
from repro.workspace import Workspace

MODELS = {
    "centrifuge": build_centrifuge_model,
    "uav": build_uav_model,
}

#: Matches tests/conftest.py's corpus scale (kept local: `from conftest
#: import ...` is ambiguous when benchmarks/conftest.py is also on the path).
TEST_SCALE = 0.03

DELTA_COUNT = 40


@pytest.fixture(scope="module")
def delta_records():
    return list(build_extension_corpus(count=DELTA_COUNT, seed=42).all_records())


@pytest.fixture(scope="module")
def second_delta_records():
    return list(
        build_extension_corpus(
            count=15, seed=43, start_serial=950000
        ).all_records()
    )


@pytest.fixture(scope="module")
def base_artifact(tmp_path_factory):
    """A saved base workspace artifact at test scale."""
    path = tmp_path_factory.mktemp("extend") / "base.cpsecws"
    Workspace.build(scale=TEST_SCALE).save(path)
    return path


@pytest.fixture(scope="module")
def extended_artifact(tmp_path_factory, base_artifact, delta_records):
    """A copy of the base artifact with one appended delta frame."""
    path = tmp_path_factory.mktemp("extended") / "ws.cpsecws"
    path.write_bytes(base_artifact.read_bytes())
    workspace = Workspace.load(path)
    summary = workspace.extend(delta_records, path=path)
    assert summary["appended_bytes"] > 0
    return path, workspace, summary


@pytest.fixture(scope="module")
def merged_corpus(delta_records):
    """A fresh from-scratch corpus equal to base + delta."""
    corpus = build_corpus(scale=TEST_SCALE)
    corpus.add_all(delta_records)
    return corpus


# -- exactness -----------------------------------------------------------------


@pytest.fixture(scope="module", params=SCORERS)
def scorer(request):
    return request.param


@pytest.fixture(scope="module", params=(True, False), ids=("fidelity", "no-fidelity"))
def fidelity_aware(request):
    return request.param


@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_extended_workspace_equals_fresh_monolithic_rebuild(
    extended_artifact, merged_corpus, scorer, fidelity_aware, model_name
):
    _, workspace, _ = extended_artifact
    model = MODELS[model_name]()
    engine = workspace.engine(scorer=scorer, fidelity_aware=fidelity_aware)
    reference = SearchEngine(
        merged_corpus,
        scorer=scorer,
        fidelity_aware=fidelity_aware,
        sharded=False,
        enable_cache=False,
    )
    assert association_signature(engine.associate(model)) == association_signature(
        reference.associate(model)
    )


def test_reloaded_extended_artifact_equals_in_memory_extension(
    extended_artifact, merged_corpus
):
    path, workspace, _ = extended_artifact
    reloaded = Workspace.load(path)
    model = build_centrifuge_model()
    assert association_signature(
        reloaded.engine().associate(model)
    ) == association_signature(workspace.engine().associate(model))
    # The reloaded corpus carries the delta records too (parsed lazily).
    assert len(reloaded.corpus) == len(merged_corpus)
    assert reloaded.params is None  # no longer a pure generator output


def test_second_stacked_delta_frame_replays_exactly(
    extended_artifact, delta_records, second_delta_records, tmp_path
):
    source, _, _ = extended_artifact
    path = tmp_path / "stacked.cpsecws"
    path.write_bytes(source.read_bytes())  # private copy: one frame so far
    workspace = Workspace.load(path)
    workspace.extend(second_delta_records, path=path)
    reloaded = Workspace.load(path)
    merged = build_corpus(scale=TEST_SCALE)
    merged.add_all(delta_records)
    merged.add_all(second_delta_records)
    reference = SearchEngine(merged, sharded=False, enable_cache=False)
    model = build_uav_model()
    assert association_signature(
        reloaded.engine().associate(model)
    ) == association_signature(reference.associate(model))


def test_extend_is_appendonly_and_small(base_artifact, tmp_path, delta_records):
    path = tmp_path / "ws.cpsecws"
    path.write_bytes(base_artifact.read_bytes())
    base_bytes = path.read_bytes()
    workspace = Workspace.load(path)
    summary = workspace.extend(delta_records, path=path)
    grown = path.read_bytes()
    # Strict append: the base bytes are untouched, the frame is the delta.
    assert grown[: len(base_bytes)] == base_bytes
    assert len(grown) - len(base_bytes) == summary["appended_bytes"]
    assert summary["appended_bytes"] < len(base_bytes) / 4
    assert sum(summary["added"].values()) == len(delta_records)


def test_save_after_extend_writes_the_merged_corpus(
    base_artifact, tmp_path, delta_records
):
    """Regression: a post-extend save() must not drop the delta records.

    The corpus section is kept as raw bytes on load; a save() that reused
    them verbatim after an extend would write indexes that reference
    records the corpus section does not contain.
    """
    path = tmp_path / "ws.cpsecws"
    path.write_bytes(base_artifact.read_bytes())
    workspace = Workspace.load(path)
    workspace.extend(delta_records)  # in-memory only, corpus still raw
    folded = tmp_path / "folded.cpsecws"
    workspace.save(folded)
    reloaded = Workspace.load(folded)
    base_count = len(Workspace.load(base_artifact).corpus)
    assert len(reloaded.corpus) == base_count + len(delta_records)
    for record in delta_records:
        assert record.identifier in reloaded.corpus
    # And the folded artifact still scores like the extended one.
    model = build_centrifuge_model()
    assert association_signature(
        reloaded.engine().associate(model)
    ) == association_signature(workspace.engine().associate(model))


def test_extend_invalidates_prior_engines(base_artifact, tmp_path, delta_records):
    path = tmp_path / "ws.cpsecws"
    path.write_bytes(base_artifact.read_bytes())
    workspace = Workspace.load(path)
    before = workspace.shared_engine()
    workspace.extend(delta_records)
    after = workspace.shared_engine()
    assert after is not before
    assert workspace.engine_handles() == (after,)


# -- failure modes -------------------------------------------------------------


def test_extend_rejects_duplicate_identifiers(base_artifact, tmp_path):
    path = tmp_path / "ws.cpsecws"
    path.write_bytes(base_artifact.read_bytes())
    workspace = Workspace.load(path)
    existing = workspace.corpus.vulnerabilities[0]
    with pytest.raises(ValueError, match="already in workspace"):
        workspace.extend([existing])


def test_extend_rejects_empty_batch(base_artifact):
    workspace = Workspace.load(base_artifact)
    with pytest.raises(ValueError, match="at least one record"):
        workspace.extend([])


def test_extend_rejects_missing_artifact_path(base_artifact, tmp_path, delta_records):
    workspace = Workspace.load(base_artifact)
    with pytest.raises(ValueError, match="not found"):
        workspace.extend(delta_records, path=tmp_path / "ghost.cpsecws")


def test_torn_final_frame_recovers_to_the_previous_state(
    base_artifact, tmp_path, delta_records
):
    """A crash mid-append must not brick the artifact.

    The torn frame's extend never completed, so the honest state is the
    artifact without it; load recovers there, and the next extend truncates
    the torn bytes before appending so they never end up mid-file.
    """
    path = tmp_path / "ws.cpsecws"
    path.write_bytes(base_artifact.read_bytes())
    base_model_sig = association_signature(
        Workspace.load(path).engine().associate(build_centrifuge_model())
    )
    Workspace.load(path).extend(delta_records, path=path)
    raw = path.read_bytes()
    for cut in (64, len(raw) - len(base_artifact.read_bytes()) - 3):
        path.write_bytes(raw[:-cut])  # tear the appended frame
        recovered = Workspace.load(path)
        assert recovered.params is not None  # the extension never applied
        assert association_signature(
            recovered.engine().associate(build_centrifuge_model())
        ) == base_model_sig
    # Extending the recovered workspace truncates the torn tail first; the
    # re-appended frame then replays cleanly.
    workspace = Workspace.load(path)
    workspace.extend(delta_records, path=path)
    reloaded = Workspace.load(path)
    assert sum(1 for _ in reloaded.corpus.all_records()) == len(
        Workspace.load(base_artifact).corpus
    ) + len(delta_records)


def test_frame_chained_to_other_corpus_fails_the_load(
    base_artifact, tmp_path, delta_records
):
    """A frame spliced onto an artifact it does not chain from is rejected."""
    donor = tmp_path / "donor.cpsecws"
    donor.write_bytes(base_artifact.read_bytes())
    base_size = donor.stat().st_size
    Workspace.load(donor).extend(delta_records, path=donor)
    frame = donor.read_bytes()[base_size:]

    other = tmp_path / "other.cpsecws"
    Workspace.build(scale=0.02).save(other)
    with open(other, "ab") as handle:
        handle.write(frame)
    with pytest.raises(ValueError, match="does not chain|fingerprint"):
        Workspace.load(other)


def test_trailing_garbage_fails_the_load(base_artifact, tmp_path):
    path = tmp_path / "ws.cpsecws"
    path.write_bytes(base_artifact.read_bytes() + b"not a frame")
    with pytest.raises(ValueError, match="delta frame"):
        Workspace.load(path)


# -- the typed service operation ----------------------------------------------


@pytest.fixture()
def service_artifact(base_artifact, tmp_path):
    path = tmp_path / "served.cpsecws"
    path.write_bytes(base_artifact.read_bytes())
    return path


def test_service_extend_swaps_in_extended_workspace(service_artifact):
    service = AnalysisService(
        workspaces={"main": service_artifact},
        default_workspace="main",
        save_artifacts=False,
    )
    request = AssociateRequest(scale=TEST_SCALE)
    before = service.associate(request)
    delta = build_extension_corpus(count=20, seed=77, start_serial=970000)
    response = service.extend(ExtendRequest(records=delta.to_dict()))
    assert sum(response.added.values()) == len(delta)
    assert response.workspace == "main"
    assert response.appended_bytes > 0
    after = service.associate(request)
    # The response cache was dropped and the new engine sees the delta.
    assert canonical_json(before.to_dict()) != canonical_json(after.to_dict())
    # A cold service over the extended artifact answers identically.
    cold = AnalysisService(
        workspaces={"main": service_artifact},
        default_workspace="main",
        save_artifacts=False,
    )
    assert canonical_json(cold.associate(request).to_dict()) == canonical_json(
        after.to_dict()
    )


def test_service_extend_typed_errors(service_artifact):
    service = AnalysisService(
        workspaces={"main": service_artifact},
        default_workspace="main",
        save_artifacts=False,
    )
    with pytest.raises(ServiceError) as excinfo:
        service.extend(ExtendRequest())
    assert excinfo.value.code == "malformed_records"
    with pytest.raises(ServiceError) as excinfo:
        service.extend(ExtendRequest(records={"vulnerabilities": "nope"}))
    assert excinfo.value.status in (400, 422)
    with pytest.raises(ServiceError) as excinfo:
        service.extend(
            ExtendRequest(records={"weaknesses": []}, workspace="ghost")
        )
    assert excinfo.value.status == 404
    # Duplicate ingest is a typed 409 conflict, not a 500.
    delta = build_extension_corpus(count=5, seed=80, start_serial=980000)
    service.extend(ExtendRequest(records=delta.to_dict()))
    with pytest.raises(ServiceError) as excinfo:
        service.extend(ExtendRequest(records=delta.to_dict()))
    assert excinfo.value.status == 409
    assert excinfo.value.code == "extend_conflict"


def test_cli_backend_serves_extended_artifact_without_rebuilding(
    service_artifact,
):
    """Regression: the legacy artifact path must not clobber extended data.

    An extended artifact records no generator parameters; the CLI's
    in-process backend (``save_artifacts=True``) used to treat that as
    "stale -> rebuild and overwrite", silently destroying the appended
    delta frames.  Parameter-less artifacts serve any scale instead, like
    the workspace registry always did.
    """
    delta = build_extension_corpus(count=10, seed=95, start_serial=991000)
    extend_service = AnalysisService(workspace=service_artifact, max_scale=None)
    extend_service.extend(ExtendRequest(records=delta.to_dict()))
    bytes_after_extend = service_artifact.read_bytes()

    cli_service = AnalysisService(workspace=service_artifact, max_scale=None)
    response = cli_service.associate(AssociateRequest(scale=TEST_SCALE))
    assert service_artifact.read_bytes() == bytes_after_extend  # no rewrite
    registry_service = AnalysisService(
        workspaces={"w": service_artifact},
        default_workspace="w",
        save_artifacts=False,
    )
    assert canonical_json(response.to_dict()) == canonical_json(
        registry_service.associate(AssociateRequest(scale=TEST_SCALE)).to_dict()
    )


def test_service_extend_requires_a_configured_workspace():
    service = AnalysisService()
    delta = build_extension_corpus(count=3, seed=81, start_serial=985000)
    with pytest.raises(ServiceError) as excinfo:
        service.extend(ExtendRequest(records=delta.to_dict()))
    assert excinfo.value.code == "no_workspace"


def test_http_extend_round_trip(service_artifact):
    service = AnalysisService(
        workspaces={"main": service_artifact},
        default_workspace="main",
        save_artifacts=False,
    )
    server = start_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        delta = build_extension_corpus(count=8, seed=90, start_serial=987000)
        response = client.extend(ExtendRequest(records=delta.to_dict()))
        assert sum(response.added.values()) == len(delta)
        # HTTP and in-process answers over the extended state are identical.
        request = AssociateRequest(scale=TEST_SCALE)
        wire = client.call_raw("associate", request.to_dict())
        mine = service.associate(request)
        assert wire.decode("utf-8") == canonical_json(mine.to_dict())
        with pytest.raises(ServiceError) as excinfo:
            client.extend(ExtendRequest(records=delta.to_dict()))
        assert excinfo.value.status == 409
    finally:
        server.shutdown()
        server.server_close()


# -- the CLI subcommand --------------------------------------------------------


def test_cli_workspace_extend(service_artifact, tmp_path, capsys):
    from repro.cli import main

    records_file = tmp_path / "delta.json"
    delta = build_extension_corpus(count=6, seed=91, start_serial=988000)
    records_file.write_text(json.dumps(delta.to_dict()), encoding="utf-8")
    exit_code = main(
        [
            "workspace",
            "extend",
            "--workspace",
            str(service_artifact),
            "--records",
            str(records_file),
        ]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "extended" in out and "appended" in out
    # Second run: duplicate identifiers, one-line operational failure.
    assert (
        main(
            [
                "workspace",
                "extend",
                "--workspace",
                str(service_artifact),
                "--records",
                str(records_file),
            ]
        )
        == 2
    )


def test_cli_workspace_extend_needs_target(tmp_path):
    from repro.cli import main

    records_file = tmp_path / "delta.json"
    records_file.write_text("{}", encoding="utf-8")
    assert main(["workspace", "extend", "--records", str(records_file)]) == 2

"""Workspace artifact tests: exactness, laziness, and corruption handling.

The one-file workspace is only admissible if an engine rebuilt from it is
*exact*: same associations, same scores, same ordering as an engine built
from the original corpus.  The artifact must also fail loudly (ValueError)
on any corruption instead of scoring against a damaged payload, and the
fast path must not materialize the corpus at all.
"""

from __future__ import annotations

import json

import pytest

from helpers_equivalence import association_signature
from repro.casestudies.centrifuge import build_centrifuge_model
from repro.casestudies.uav import build_uav_model
from repro.search.engine import SCORERS, SearchEngine
from repro.workspace import MAGIC, Workspace

TEST_SCALE = 0.03


@pytest.fixture(scope="module")
def workspace():
    return Workspace.build(scale=TEST_SCALE)


@pytest.fixture(scope="module")
def saved_path(workspace, tmp_path_factory):
    return workspace.save(tmp_path_factory.mktemp("ws") / "repro.cpsecws")


@pytest.mark.parametrize("scorer", SCORERS)
@pytest.mark.parametrize("model_builder", (build_centrifuge_model, build_uav_model))
def test_workspace_engine_equals_fresh_engine(
    small_corpus, saved_path, scorer, model_builder
):
    loaded = Workspace.load(saved_path)
    model = model_builder()
    got = loaded.engine(scorer=scorer).associate(model)
    reference = SearchEngine(small_corpus, scorer=scorer, enable_cache=False)
    assert association_signature(got) == association_signature(
        reference.associate(model)
    )


def test_workspace_round_trip_preserves_metadata(saved_path):
    loaded = Workspace.load(saved_path)
    assert loaded.matches(scale=TEST_SCALE)
    assert not loaded.matches(scale=1.0)
    assert not loaded.matches(scale=TEST_SCALE, seed=8)
    assert loaded.corpus_fingerprint
    assert loaded.engine_config["scorer"] == "coverage"


def test_fast_path_never_materializes_the_corpus(saved_path):
    loaded = Workspace.load(saved_path)
    engine = loaded.engine()
    engine.associate(build_centrifuge_model())
    # Coverage scoring runs entirely on the prepared arrays.
    assert loaded._corpus is None
    assert engine._corpus is None
    # Jaccard needs record texts, so it materializes the corpus lazily...
    jaccard = loaded.engine(scorer="jaccard")
    jaccard.associate(build_centrifuge_model())
    assert jaccard.corpus is loaded.corpus
    # ... and the materialized corpus matches what was bundled.
    assert len(loaded.corpus) == len(jaccard.corpus)


def test_lazy_corpus_matches_original(small_corpus, saved_path):
    loaded = Workspace.load(saved_path)
    assert loaded.corpus.to_dict() == small_corpus.to_dict()


def test_engine_config_overrides_win(saved_path):
    loaded = Workspace.load(saved_path)
    engine = loaded.engine(scorer="cosine", pattern_threshold=0.5)
    assert engine.scorer == "cosine"
    assert engine.pattern_threshold == 0.5
    default_engine = loaded.engine()
    assert default_engine.scorer == "coverage"
    assert default_engine.pattern_threshold == 0.12


def test_save_is_atomic_over_existing_artifact(workspace, tmp_path):
    path = tmp_path / "repro.cpsecws"
    path.write_bytes(b"previous artifact contents")
    workspace.save(path)
    assert path.read_bytes().startswith(MAGIC)
    assert not list(tmp_path.glob("*.tmp"))


def test_load_rejects_non_artifact(tmp_path):
    path = tmp_path / "not-a-workspace"
    path.write_text("{}", encoding="utf-8")
    with pytest.raises(ValueError, match="not a workspace artifact"):
        Workspace.load(path)


def test_load_rejects_unknown_version(workspace, tmp_path):
    path = workspace.save(tmp_path / "ws")
    raw = path.read_bytes()
    first = raw.index(b"\n")
    second = raw.index(b"\n", first + 1)
    header_length = int(raw[first + 1 : second])
    header = json.loads(raw[second + 1 : second + 1 + header_length])
    header["version"] = 999
    edited = json.dumps(header).encode("utf-8")
    frame = MAGIC + b"\n" + str(len(edited)).encode() + b"\n" + edited
    path.write_bytes(frame + raw[second + 1 + header_length :])
    with pytest.raises(ValueError, match="workspace version"):
        Workspace.load(path)


def test_load_rejects_corrupt_engine_config(workspace, tmp_path):
    """Bad configuration must be ValueError (the rebuild signal), not TypeError."""
    import json as json_module

    from repro.workspace import MAGIC as magic

    path = workspace.save(tmp_path / "ws")
    raw = path.read_bytes()
    first = raw.index(b"\n")
    second = raw.index(b"\n", first + 1)
    header_length = int(raw[first + 1 : second])
    header = json_module.loads(raw[second + 1 : second + 1 + header_length])

    def rewrite(engine_config):
        edited_header = dict(header, engine_config=engine_config)
        edited = json_module.dumps(edited_header).encode("utf-8")
        frame = magic + b"\n" + str(len(edited)).encode() + b"\n" + edited
        path.write_bytes(frame + raw[second + 1 + header_length :])

    rewrite(dict(header["engine_config"], bogus_field=1))
    with pytest.raises(ValueError, match="unknown workspace engine_config key"):
        Workspace.load(path)
    rewrite(dict(header["engine_config"], pattern_threshold="0.12"))
    with pytest.raises(ValueError, match="invalid value"):
        Workspace.load(path)


def test_load_rejects_truncated_file(workspace, tmp_path):
    path = workspace.save(tmp_path / "ws")
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(ValueError):
        Workspace.load(path)


def test_load_rejects_garbled_header(tmp_path):
    path = tmp_path / "ws"
    path.write_bytes(MAGIC + b"\nnot-a-length\n{}")
    with pytest.raises(ValueError):
        Workspace.load(path)


def test_saved_then_loaded_workspace_can_be_resaved(saved_path, tmp_path):
    """A loaded workspace (hydrated indexes) must survive another save."""
    loaded = Workspace.load(saved_path)
    resaved = Workspace.load(loaded.save(tmp_path / "resaved.cpsecws"))
    model = build_centrifuge_model()
    assert association_signature(
        resaved.engine().associate(model)
    ) == association_signature(Workspace.load(saved_path).engine().associate(model))


def test_built_workspace_hands_back_its_engine(small_corpus):
    """build + engine() must not tokenize-and-fit a second engine."""
    workspace = Workspace.build(scale=TEST_SCALE)
    first = workspace.engine()
    assert workspace.engine() is first
    assert workspace.engine(scorer="coverage") is first  # matches recorded config
    different = workspace.engine(scorer="cosine")
    assert different is not first
    assert different.scorer == "cosine"


def test_loaded_workspace_constructs_fresh_engines(saved_path):
    loaded = Workspace.load(saved_path)
    assert loaded.engine() is not loaded.engine()


def test_index_rejects_duplicate_posting_positions():
    from repro.search.index import InvertedIndex

    with pytest.raises(ValueError, match="strictly increasing"):
        InvertedIndex.from_dict(
            {"documents": [["d1", 2], ["d2", 3]], "postings": {"tok": [[0, 0], [1, 2]]}}
        )


def test_from_engine_records_configuration(small_corpus, tmp_path):
    engine = SearchEngine(
        small_corpus, scorer="cosine", max_per_class=5, max_cache_entries=128
    )
    workspace = Workspace.from_engine(engine)
    assert workspace.engine_config["scorer"] == "cosine"
    assert workspace.engine_config["max_per_class"] == 5
    assert workspace.engine_config["max_cache_entries"] == 128
    assert workspace.engine_config["enable_cache"] is True
    # The cache configuration survives the save/load round trip.
    loaded = Workspace.load(workspace.save(tmp_path / "ws"))
    assert loaded.engine().cache_info()["max_entries"] == 128
    # No generation parameters recorded -> never claims to match a scale.
    assert not workspace.matches(scale=TEST_SCALE)
    rebuilt = workspace.engine()
    model = build_centrifuge_model()
    assert association_signature(rebuilt.associate(model)) == association_signature(
        SearchEngine(
            small_corpus, scorer="cosine", max_per_class=5, enable_cache=False
        ).associate(model)
    )

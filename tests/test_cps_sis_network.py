"""Tests for the safety instrumented system, the message bus, and the firewall."""

import pytest

from repro.cps.network import Firewall, FirewallRule, Message, MessageBus, MessageKind
from repro.cps.sis import SafetyInstrumentedSystem, SisLimits


# -- SIS -------------------------------------------------------------------------


def test_sis_limits_validation():
    with pytest.raises(ValueError):
        SisLimits(confirmation_samples=0)


def test_sis_trips_on_persistent_high_temperature():
    sis = SafetyInstrumentedSystem(limits=SisLimits(confirmation_samples=3))
    assert not sis.check(0.0, 29.0, 5000.0, 5000.0)
    assert not sis.check(1.0, 29.0, 5000.0, 5000.0)
    assert sis.check(2.0, 29.0, 5000.0, 5000.0)
    assert sis.tripped
    assert "temperature" in sis.trip_reason
    assert sis.trip_time_s == 2.0


def test_sis_does_not_trip_on_transient_violation():
    sis = SafetyInstrumentedSystem(limits=SisLimits(confirmation_samples=3))
    sis.check(0.0, 29.0, 5000.0, 5000.0)
    sis.check(1.0, 20.0, 5000.0, 5000.0)  # violation clears
    sis.check(2.0, 29.0, 5000.0, 5000.0)
    sis.check(3.0, 29.0, 5000.0, 5000.0)
    assert not sis.tripped


def test_sis_trips_on_overspeed_and_on_speed_over_commanded():
    sis = SafetyInstrumentedSystem(limits=SisLimits(confirmation_samples=1))
    assert sis.check(0.0, 20.0, 9600.0, 9000.0)
    assert "speed" in sis.trip_reason

    commanded = SafetyInstrumentedSystem(limits=SisLimits(confirmation_samples=1))
    assert commanded.check(0.0, 20.0, 4000.0, 3000.0)
    assert "commanded" in commanded.trip_reason


def test_sis_trip_is_latched_and_resettable():
    sis = SafetyInstrumentedSystem(limits=SisLimits(confirmation_samples=1))
    sis.check(0.0, 35.0, 1000.0, 1000.0)
    assert sis.tripped
    assert sis.drive_permission() == 0.0
    # Conditions back to normal: still tripped (latched).
    assert sis.check(1.0, 20.0, 1000.0, 1000.0)
    sis.reset()
    assert not sis.tripped
    assert sis.drive_permission() == 1.0


def test_disabled_sis_never_trips():
    sis = SafetyInstrumentedSystem(limits=SisLimits(confirmation_samples=1))
    sis.disable()
    assert not sis.check(0.0, 60.0, 9999.0, 0.0)
    assert not sis.tripped
    sis.enable()
    assert sis.check(1.0, 60.0, 9999.0, 0.0)


# -- messages and bus --------------------------------------------------------------


def test_message_with_payload_is_functional():
    message = Message("a", "b", MessageKind.SETPOINT_WRITE, {"value": 1.0})
    modified = message.with_payload(value=2.0)
    assert modified.payload["value"] == 2.0
    assert message.payload["value"] == 1.0


def test_bus_registration_and_delivery():
    bus = MessageBus()
    received = []
    bus.register("dev", received.append)
    bus.send("src", "dev", MessageKind.STATUS, {"x": 1})
    assert bus.pending() == 1
    assert bus.deliver() == 1
    assert bus.pending() == 0
    assert received[0].payload == {"x": 1}
    assert len(bus.delivered) == 1


def test_bus_rejects_duplicate_registration():
    bus = MessageBus()
    bus.register("dev", lambda m: None)
    with pytest.raises(ValueError):
        bus.register("dev", lambda m: None)


def test_bus_drops_messages_to_unknown_receivers():
    bus = MessageBus()
    bus.send("src", "nobody", MessageKind.STATUS, {})
    assert bus.deliver() == 0
    assert len(bus.dropped) == 1


def test_bus_messages_get_increasing_sequence_numbers():
    bus = MessageBus()
    first = bus.send("a", "b", MessageKind.STATUS, {})
    second = bus.send("a", "b", MessageKind.STATUS, {})
    assert second.sequence > first.sequence


def test_bus_tap_can_modify_and_drop():
    bus = MessageBus()
    received = []
    bus.register("dev", received.append)

    def tamper(message):
        if message.payload.get("drop"):
            return None
        return message.with_payload(value=99)

    bus.add_tap(tamper)
    bus.send("src", "dev", MessageKind.MEASUREMENT, {"value": 1})
    bus.send("src", "dev", MessageKind.MEASUREMENT, {"value": 2, "drop": True})
    assert bus.deliver() == 1
    assert received[0].payload["value"] == 99
    assert len(bus.dropped) == 1
    bus.remove_tap(tamper)
    bus.send("src", "dev", MessageKind.MEASUREMENT, {"value": 3})
    bus.deliver()
    assert received[-1].payload["value"] == 3


# -- firewall ------------------------------------------------------------------------


def test_firewall_rule_matching():
    rule = FirewallRule("ws", "plc", (MessageKind.SETPOINT_WRITE,))
    allowed = Message("ws", "plc", MessageKind.SETPOINT_WRITE, {})
    wrong_kind = Message("ws", "plc", MessageKind.ENGINEERING, {})
    wrong_sender = Message("corp", "plc", MessageKind.SETPOINT_WRITE, {})
    assert rule.permits(allowed)
    assert not rule.permits(wrong_kind)
    assert not rule.permits(wrong_sender)
    wildcard = FirewallRule("*", "plc")
    assert wildcard.permits(wrong_sender)


def test_firewall_default_deny_for_protected_devices():
    firewall = Firewall(protected=frozenset({"plc"}))
    firewall.allow("ws", "plc")
    assert firewall.filter(Message("ws", "plc", MessageKind.SETPOINT_WRITE, {})) is not None
    assert firewall.filter(Message("corp", "plc", MessageKind.SETPOINT_WRITE, {})) is None
    assert firewall.dropped_count == 1


def test_firewall_ignores_unprotected_receivers():
    firewall = Firewall(protected=frozenset({"plc"}))
    message = Message("corp", "historian", MessageKind.STATUS, {})
    assert firewall.filter(message) is message


def test_bypassed_firewall_passes_everything():
    firewall = Firewall(protected=frozenset({"plc"}))
    firewall.bypassed = True
    assert firewall.filter(Message("corp", "plc", MessageKind.ENGINEERING, {})) is not None
    assert firewall.dropped_count == 0

"""Round-trip and validation tests for the typed operations protocol."""

import json

import pytest

from repro.analysis.metrics import ComponentPosture, PostureMetrics
from repro.analysis.recommendations import Recommendation
from repro.analysis.topology import ComponentTopology, TopologyReport
from repro.analysis.whatif import ComponentDelta, WhatIfComparison
from repro.corpus.schema import RecordKind
from repro.graph.validation import Severity, ValidationFinding
from repro.search.chains import ExploitChain
from repro.search.engine import Match
from repro.service.protocol import (
    OPERATIONS,
    SCHEMA_VERSION,
    AssociateRequest,
    AssociateResponse,
    ChainsRequest,
    ChainsResponse,
    RecommendResponse,
    ServiceError,
    SimulateRequest,
    TopologyResponse,
    ValidateResponse,
    WhatIfRequest,
    WhatIfResponse,
    canonical_json,
    parse_request,
)


def _sample_metrics(name: str = "sys") -> PostureMetrics:
    return PostureMetrics(
        system_name=name,
        components=(
            ComponentPosture(
                name="A",
                attack_patterns=3,
                weaknesses=2,
                vulnerabilities=1,
                exposure_distance=None,
                criticality=0.5,
                mean_cvss=7.5,
                max_cvss=9.8,
                posture_index=4.2,
            ),
        ),
        total_attack_patterns=3,
        total_weaknesses=2,
        total_vulnerabilities=1,
        system_posture_index=4.2,
    )


def test_every_request_round_trips_with_defaults():
    for operation, (request_type, _) in OPERATIONS.items():
        request = request_type()
        payload = request.to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        rebuilt = request_type.from_dict(payload)
        assert rebuilt == request, operation
        # And through actual JSON text, the way the wire sees it.
        rebuilt = request_type.from_dict(json.loads(canonical_json(payload)))
        assert rebuilt == request, operation


def test_customized_request_round_trips():
    request = ChainsRequest(
        model={"name": "m", "components": [], "connections": []},
        target="SIS Platform",
        max_length=3,
        limit=2,
        scale=0.5,
        scorer="cosine",
        workers=4,
    )
    assert ChainsRequest.from_dict(request.to_dict()) == request


def test_unknown_request_field_is_rejected():
    with pytest.raises(ServiceError) as excinfo:
        AssociateRequest.from_dict({"scale": 0.1, "shard": 3})
    assert excinfo.value.code == "unknown_fields"
    assert "shard" in excinfo.value.message


def test_mismatched_schema_version_is_rejected():
    with pytest.raises(ServiceError) as excinfo:
        SimulateRequest.from_dict({"schema_version": 99})
    assert excinfo.value.code == "unsupported_schema_version"


def test_non_object_payload_is_rejected():
    with pytest.raises(ServiceError):
        WhatIfRequest.from_dict(["not", "a", "dict"])


def test_missing_required_response_field_is_a_typed_error():
    from repro.service.protocol import ExportResponse

    with pytest.raises(ServiceError) as excinfo:
        ExportResponse.from_dict({"schema_version": SCHEMA_VERSION})
    assert excinfo.value.code == "malformed_payload"


def test_parse_request_routes_and_rejects():
    request = parse_request("associate", {"scale": 0.25})
    assert isinstance(request, AssociateRequest)
    assert request.scale == 0.25
    with pytest.raises(ServiceError) as excinfo:
        parse_request("nope", {})
    assert excinfo.value.status == 404
    assert "known_operations" in excinfo.value.details


def test_associate_response_round_trips():
    response = AssociateResponse(
        posture=_sample_metrics(),
        severity_histogram={"None": 0, "Critical": 2},
    )
    rebuilt = AssociateResponse.from_dict(json.loads(canonical_json(response.to_dict())))
    assert rebuilt == response
    assert rebuilt.posture.component("A").max_cvss == 9.8


def test_whatif_response_round_trips():
    comparison = WhatIfComparison(
        baseline_name="base",
        variant_name="var",
        baseline_metrics=_sample_metrics("base"),
        variant_metrics=_sample_metrics("var"),
        component_deltas=(
            ComponentDelta(
                name="A",
                baseline_total=6,
                variant_total=4,
                baseline_posture=4.2,
                variant_posture=2.1,
            ),
        ),
        added_components=("B",),
        removed_components=(),
    )
    response = WhatIfResponse(comparison=comparison)
    rebuilt = WhatIfResponse.from_dict(json.loads(canonical_json(response.to_dict())))
    assert rebuilt == response
    assert rebuilt.comparison.component_set_changed


def test_chains_response_round_trips():
    match = Match(
        identifier="CVE-2020-0001",
        kind=RecordKind.VULNERABILITY,
        score=0.75,
        name="CVE-2020-0001",
        severity="High",
        cvss_score=8.1,
        network_exploitable=True,
    )
    chain = ExploitChain(path=("A", "B"), vectors=(("A", match), ("B", match)), score=0.5625)
    response = ChainsResponse(
        target="B", chains=(chain,), summary={"count": 1}, total_chains=1
    )
    rebuilt = ChainsResponse.from_dict(json.loads(canonical_json(response.to_dict())))
    assert rebuilt == response
    assert rebuilt.chains[0].describe() == chain.describe()


def test_topology_and_validate_and_recommend_round_trip():
    report = TopologyReport(
        system_name="sys",
        components=(
            ComponentTopology(
                name="A",
                degree=2,
                betweenness=0.5,
                is_articulation_point=True,
                exposure_distance=1,
                reachable_components=3,
            ),
        ),
        attack_surface=("A",),
        boundary_components=(),
    )
    response = TopologyResponse(report=report)
    assert TopologyResponse.from_dict(response.to_dict()) == response

    finding = ValidationFinding(Severity.WARNING, "ISOLATED", "A", "no connections")
    validate = ValidateResponse(findings=(finding,))
    rebuilt = ValidateResponse.from_dict(validate.to_dict())
    assert rebuilt == validate
    assert str(rebuilt.findings[0]) == str(finding)

    recommendation = Recommendation(
        component="A",
        weakness_id="CWE-78",
        weakness_name="OS Command Injection",
        summary="neutralize input",
        whatif_change="constrain the API",
        evidence_count=2,
        priority=4.0,
    )
    recommend = RecommendResponse(recommendations=(recommendation,))
    assert RecommendResponse.from_dict(recommend.to_dict()) == recommend


def test_service_error_round_trips():
    error = ServiceError(
        "unknown scenario 'x'",
        code="unknown_scenario",
        status=404,
        details={"known_scenarios": ["a", "b"]},
    )
    rebuilt = ServiceError.from_dict(json.loads(canonical_json(error.to_dict())), status=404)
    assert rebuilt.message == error.message
    assert rebuilt.code == error.code
    assert rebuilt.status == 404
    assert rebuilt.details == error.details


def test_canonical_json_is_key_order_independent():
    assert canonical_json({"b": 1, "a": [1.5, True]}) == canonical_json({"a": [1.5, True], "b": 1})

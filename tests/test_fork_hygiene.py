"""Fork hygiene: a pre-forked worker must not inherit observable state.

``cpsec serve --workers N`` warms the service in the parent and forks, so
the expensive immutable state (fitted models, mmap-backed indexes) is shared
copy-on-write.  Everything *observable* and mutable -- engine stats, result
caches, the whole-response cache, the process-wide CVSS LRU caches -- must
reset in the child via :meth:`AnalysisService.post_fork_reset`, or worker 1
would report the parent's warm-up traffic as its own and worker 2 would
start with a different cache temperature than worker 1.

Real ``os.fork`` is used (skipped where unavailable): copy-on-write
semantics around the reset are exactly what is under test.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.corpus.cvss import _base_score_cached, _parse_cached
from repro.service.protocol import AssociateRequest
from repro.service.service import AnalysisService
from repro.workspace import Workspace

SCALE = 0.02

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="post-fork hygiene needs os.fork"
)


@pytest.fixture(scope="module")
def warm_service(tmp_path_factory):
    """A parent-side service with warm engines and hot caches."""
    path = tmp_path_factory.mktemp("fork") / "ws.cpsecws"
    Workspace.build(scale=SCALE).save(path)
    service = AnalysisService(
        workspaces={"main": path},
        default_workspace="main",
        save_artifacts=False,
        workspace_mmap=True,
    )
    service.warm_workspace("main")
    # Warm-up traffic: fills engine stats, result caches, and CVSS LRUs.
    service.associate(AssociateRequest(scale=SCALE, workspace="main"))
    return service


def _child_snapshot(service: AnalysisService) -> dict:
    """What a freshly reset worker observes (runs in the forked child)."""
    service.post_fork_reset()
    workspace = service.warm_workspace("main")
    stats = [engine.stats.snapshot() for engine in workspace.engine_handles()]
    return {
        "stats": stats,
        "cvss_parse_cached": _parse_cached.cache_info().currsize,
        "cvss_score_cached": _base_score_cached.cache_info().currsize,
    }


def _run_in_fork(fn, *args) -> dict:
    """Run ``fn`` in a forked child; returns its JSON result via a pipe."""
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        code = 1
        try:
            os.close(read_fd)
            payload = json.dumps(fn(*args)).encode("utf-8")
            os.write(write_fd, payload)
            os.close(write_fd)
            code = 0
        except BaseException:
            import traceback

            traceback.print_exc()
        finally:
            os._exit(code)
    os.close(write_fd)
    chunks = []
    while True:
        chunk = os.read(read_fd, 65536)
        if not chunk:
            break
        chunks.append(chunk)
    os.close(read_fd)
    _, status = os.waitpid(pid, 0)
    assert os.waitstatus_to_exitcode(status) == 0, "forked child failed"
    return json.loads(b"".join(chunks))


def test_two_forked_workers_start_with_zero_engine_stats(warm_service):
    # The parent's warm-up really did dirty the counters...
    parent_stats = [
        engine.stats.snapshot()
        for engine in warm_service.warm_workspace("main").engine_handles()
    ]
    assert any(any(counters.values()) for counters in parent_stats)
    # ...and each of two forked workers observes zeroed ones after reset.
    for _ in range(2):
        snapshot = _run_in_fork(_child_snapshot, warm_service)
        assert snapshot["stats"], "child lost its warm engines"
        for counters in snapshot["stats"]:
            assert all(value == 0 for value in counters.values()), counters
        assert snapshot["cvss_parse_cached"] == 0
        assert snapshot["cvss_score_cached"] == 0


def test_reset_keeps_the_parent_untouched(warm_service):
    """post_fork_reset in the child is copy-on-write: the parent's hot
    caches and counters survive its children resetting theirs."""
    before = [
        engine.stats.snapshot()
        for engine in warm_service.warm_workspace("main").engine_handles()
    ]
    _run_in_fork(_child_snapshot, warm_service)
    after = [
        engine.stats.snapshot()
        for engine in warm_service.warm_workspace("main").engine_handles()
    ]
    assert after == before
    assert _parse_cached.cache_info().currsize > 0


def test_post_fork_reset_is_also_safe_in_process(warm_service):
    """The reset is idempotent and does not require an actual fork."""
    warm_service.post_fork_reset()
    response = warm_service.associate(AssociateRequest(scale=SCALE, workspace="main"))
    warm_service.post_fork_reset()
    again = warm_service.associate(AssociateRequest(scale=SCALE, workspace="main"))
    assert response.to_dict() == again.to_dict()

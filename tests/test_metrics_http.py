"""End-to-end observability: ``/metrics`` scrapes and trace-id propagation.

The acceptance bars for the observability layer:

* ``GET /metrics`` is *valid* text exposition (the strict parser from
  :mod:`repro.obs.textparse` accepts it) and its request counters move when
  requests are served,
* every response -- success and error, sync and job -- carries a trace id;
  an inbound ``X-Cpsec-Trace-Id`` propagates end to end (response header,
  job record, SSE frames, journal) while 200 bodies stay byte-identical to
  the in-process path,
* ``/healthz`` keeps its pre-observability shape (plus an additive
  deprecation note) and its numbers agree with ``/metrics``,
* with ``cpsec serve --workers 2`` one scrape merges every worker's
  registry, each series labelled with its worker (the slow subprocess test
  at the bottom).
"""

import json
import os
import re
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from helpers_jobs import ScriptedService, drain_steps, stepped_manager
from repro.jobs import JobManager
from repro.jobs.store import read_journal
from repro.obs.metrics import EXPOSITION_CONTENT_TYPE, MetricsRegistry
from repro.obs.textparse import parse_exposition, sum_samples
from repro.obs.trace import TRACE_HEADER, current_trace_id, trace
from repro.service import (
    AnalysisService,
    ServiceClient,
    ServiceError,
    ValidateRequest,
    canonical_json,
    start_server,
)
from repro.workspace import Workspace

SCALE = 0.02

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def live():
    """One warm service with a job engine behind a real HTTP server."""
    service = AnalysisService()
    jobs = JobManager(service, workers=2, metrics=service.metrics)
    server = start_server(service, port=0, jobs=jobs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield service, jobs, ServiceClient(f"http://{host}:{port}"), f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    jobs.close(timeout=10.0)
    thread.join(timeout=5)


def _scrape(url: str) -> tuple[dict, str]:
    with urllib.request.urlopen(f"{url}/metrics", timeout=30) as response:
        assert response.status == 200
        assert response.headers.get("Content-Type") == EXPOSITION_CONTENT_TYPE
        text = response.read().decode("utf-8")
    return parse_exposition(text), text


# -- /metrics ----------------------------------------------------------------


def test_metrics_endpoint_is_valid_exposition_and_counts_requests(live):
    _, _, client, url = live
    families, _ = _scrape(url)
    before = sum_samples(families, "cpsec_requests_total", operation="validate")
    client.validate(ValidateRequest())
    client.validate(ValidateRequest())
    families, text = _scrape(url)
    assert (
        sum_samples(families, "cpsec_requests_total", operation="validate")
        == before + 2
    )
    # Counter discipline: the TYPE header appears exactly once.
    assert text.count("# TYPE cpsec_requests_total counter") == 1
    # Latency histogram moved in step with the counter.
    latency_count = sum(
        sample.value
        for sample in families["cpsec_request_seconds"].samples
        if sample.name == "cpsec_request_seconds_count"
        and sample.labels.get("operation") == "validate"
    )
    assert latency_count >= before + 2
    # Every series carries the worker label (single-process: worker 0).
    for sample in families["cpsec_requests_total"].samples:
        assert sample.labels.get("worker") == "0"


def test_metrics_response_cache_hits_and_healthz_agree(live):
    service, _, client, url = live
    client.validate(ValidateRequest())  # primes the cache
    client.validate(ValidateRequest())  # must be a hit
    families, _ = _scrape(url)
    hits = sum_samples(
        families, "cpsec_response_cache_total", operation="validate", result="hit"
    )
    assert hits >= 1
    # Scrape-time collector numbers come from the same source /healthz reads.
    health = service.health()
    assert sum_samples(families, "cpsec_response_cache_entries") == health[
        "response_cache"
    ]["entries"]
    assert sum_samples(families, "cpsec_uptime_seconds") > 0


def test_metrics_counts_http_routes_and_job_lifecycle(live):
    _, _, client, url = live
    job = client.submit("validate", ValidateRequest())
    record = client.wait(job["job_id"], timeout=60.0)
    assert record["state"] == "succeeded"
    families, _ = _scrape(url)
    assert sum_samples(families, "cpsec_jobs_submitted_total") >= 1
    assert (
        sum_samples(families, "cpsec_jobs_finished_total", state="succeeded") >= 1
    )
    assert sum_samples(families, "cpsec_http_requests_total", route="jobs") >= 1
    assert sum_samples(families, "cpsec_http_requests_total", route="metrics") >= 1
    wait_counts = sum(
        sample.value
        for sample in families["cpsec_job_wait_seconds"].samples
        if sample.name == "cpsec_job_wait_seconds_count"
    )
    assert wait_counts >= 1
    # Scheduler state collectors ride the same scrape.
    assert "cpsec_scheduler_flow_pass" in families
    assert "cpsec_scheduler_dispatched_total" in families


def test_healthz_keeps_shape_and_notes_deprecation(live):
    _, _, client, _ = live
    payload = client.health()
    assert payload["status"] == "ok"
    assert set(payload["response_cache"]) == {
        "enabled",
        "entries",
        "evictions",
        "max_entries",
    }
    assert payload["metrics"]["endpoint"] == "/metrics"
    assert "engines[].stats" in payload["metrics"]["deprecated_fields"]


# -- trace propagation: sync -------------------------------------------------


def test_inbound_trace_id_echoes_on_response_header_not_body(live):
    service, _, _, url = live
    body = canonical_json({}).encode("utf-8")
    request = urllib.request.Request(
        f"{url}/v1/validate",
        data=body,
        headers={"Content-Type": "application/json", TRACE_HEADER: "req-42"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.headers.get(TRACE_HEADER) == "req-42"
        wire = response.read()
    # Byte identity with the in-process path survives tracing: the id rides
    # the header, never the 200 body.
    local = service.validate(ValidateRequest())
    assert wire.decode("utf-8") == canonical_json(local.to_dict())


def test_missing_trace_header_gets_generated_id(live):
    _, _, _, url = live
    request = urllib.request.Request(
        f"{url}/v1/validate",
        data=b"{}",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        generated = response.headers.get(TRACE_HEADER)
    assert generated is not None
    assert re.fullmatch(r"[0-9a-f]{32}", generated)


def test_invalid_inbound_trace_id_is_replaced(live):
    _, _, _, url = live
    request = urllib.request.Request(
        f"{url}/v1/validate",
        data=b"{}",
        headers={"Content-Type": "application/json", TRACE_HEADER: "bad id!"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        echoed = response.headers.get(TRACE_HEADER)
    assert echoed is not None and echoed != "bad id!"


def test_error_bodies_carry_trace_id(live):
    _, _, _, url = live
    request = urllib.request.Request(
        f"{url}/v1/associate",
        data=b"{not json",
        headers={"Content-Type": "application/json", TRACE_HEADER: "err-7"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    assert excinfo.value.code == 400
    body = json.loads(excinfo.value.read())
    assert body["trace_id"] == "err-7"
    assert body["error"]["code"] == "malformed_json"


def test_client_captures_last_trace_id(live):
    _, _, _, url = live
    client = ServiceClient(url, trace_id="cli-abc")
    client.validate(ValidateRequest())
    assert client.last_trace_id == "cli-abc"
    anonymous = ServiceClient(url)
    anonymous.validate(ValidateRequest())
    assert anonymous.last_trace_id is not None
    with pytest.raises(ServiceError):
        client.call_raw("nonsense", {})
    assert client.last_trace_id == "cli-abc"  # error paths capture it too


# -- trace propagation: jobs + SSE -------------------------------------------


def test_job_record_and_sse_frames_carry_submitting_trace_id(live):
    _, _, _, url = live
    client = ServiceClient(url, trace_id="job-trace-1")
    job = client.submit("validate", ValidateRequest())
    assert job["trace_id"] == "job-trace-1"
    events = list(client.stream_events(job["job_id"]))
    assert events, "expected at least the terminal state event"
    assert all(event["trace_id"] == "job-trace-1" for event in events)
    record = client.wait(job["job_id"], timeout=60.0)
    assert record["trace_id"] == "job-trace-1"


def test_job_without_inbound_trace_gets_its_own_id(live):
    _, _, client, _ = live
    job = client.submit("validate", ValidateRequest())
    assert re.fullmatch(r"[0-9a-f]{32}", job["trace_id"])


# -- trace propagation: manager + journal (fake clock, no HTTP) ---------------


def test_submit_inside_trace_propagates_to_run_and_journal(tmp_path):
    captured: list = []

    def capture(request):
        captured.append(current_trace_id())
        return {"ok": True}

    journal = tmp_path / "jobs.jsonl"
    manager, _ = stepped_manager(
        ScriptedService({"associate": capture}), journal_path=journal
    )
    with trace("ambient-9"):
        job = manager.submit("associate", {})
    assert job.trace_id == "ambient-9"
    assert current_trace_id() is None  # the request trace ended at the door
    drain_steps(manager)
    # The worker re-entered the submitting request's trace for the run.
    assert captured == ["ambient-9"]
    manager.close(timeout=5.0)
    submitted = [
        entry for entry in read_journal(journal) if entry["kind"] == "submitted"
    ]
    assert submitted[0]["trace_id"] == "ambient-9"
    # Replay restores the id: GET /v1/jobs/<id> answers with the same trace
    # after a server restart.
    replayed, _ = stepped_manager(ScriptedService(), journal_path=journal)
    assert replayed.get(job.job_id).trace_id == "ambient-9"
    replayed.close(timeout=5.0)


def test_manager_counts_lifecycle_in_shared_registry():
    registry = MetricsRegistry()
    manager, clock = stepped_manager(ScriptedService(), metrics=registry)
    manager.submit("associate", {})
    clock.advance(0.5)
    drain_steps(manager)
    families = parse_exposition(registry.render())
    assert sum_samples(families, "cpsec_jobs_submitted_total") == 1
    assert sum_samples(families, "cpsec_jobs_finished_total", state="succeeded") == 1
    waits = [
        sample.value
        for sample in families["cpsec_job_wait_seconds"].samples
        if sample.name == "cpsec_job_wait_seconds_count"
    ]
    assert sum(waits) == 1
    manager.close(timeout=5.0)


# -- slow-request log ---------------------------------------------------------


def test_slow_request_threshold_emits_structured_line(capfd):
    service = AnalysisService()
    server = start_server(service, port=0, slow_request_ms=0.0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/validate",
            data=b"{}",
            headers={"Content-Type": "application/json", TRACE_HEADER: "slow-1"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30):
            pass
        deadline = time.monotonic() + 10.0
        records = []
        while time.monotonic() < deadline and not records:
            err = capfd.readouterr().err
            records = [
                json.loads(line)
                for line in err.splitlines()
                if line.startswith("{") and '"slow_request"' in line
            ]
            if not records:
                time.sleep(0.05)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    assert records, "expected a slow-request line at threshold 0"
    record = records[0]
    assert record["event"] == "slow_request"
    assert record["trace_id"] == "slow-1"
    assert record["operation"] == "validate"
    assert record["status"] == 200
    span_names = [recorded["name"] for recorded in record["spans"]]
    assert "parse" in span_names and "render" in span_names


# -- cross-worker aggregation (real pre-forked processes) ---------------------


@pytest.mark.slow
def test_preforked_metrics_aggregate_across_workers(tmp_path):
    """`--workers 2`: one scrape merges both workers' registries.

    Request counts summed over the ``worker`` label equal the requests sent,
    and both workers appear in the exposition (each publishes a snapshot at
    startup, before serving anything).
    """
    artifact = tmp_path / "serve.cpsecws"
    Workspace.build(scale=SCALE).save(artifact)
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--workspace", f"main={artifact}",
            "--port", "0",
            "--workers", "2",
        ],
        cwd=tmp_path,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines: list[str] = []

    def _pump() -> None:
        for line in process.stdout:
            lines.append(line.rstrip("\n"))

    threading.Thread(target=_pump, daemon=True).start()
    try:
        deadline = time.monotonic() + 120.0
        url = None
        while time.monotonic() < deadline:
            banner = next(
                (line for line in lines if "serving analysis service" in line), None
            )
            if banner:
                url = banner.split("on ", 1)[1].split(" ", 1)[0]
                break
            assert process.poll() is None, f"serve died: {lines}"
            time.sleep(0.1)
        assert url, f"no banner in: {lines}"
        while time.monotonic() < deadline:
            if sum("worker" in line and "started" in line for line in lines) >= 2:
                break
            time.sleep(0.1)

        sent = 6
        for _ in range(sent):
            request = urllib.request.Request(
                f"{url}/v1/validate",
                data=b"{}",
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                assert response.status == 200
                assert response.headers.get(TRACE_HEADER)

        # Workers publish their snapshot right after answering, so the
        # fleet total converges within a scrape or two.
        total = -1.0
        workers: set = set()
        while time.monotonic() < deadline:
            families, _ = _scrape(url)
            total = sum_samples(
                families, "cpsec_requests_total", operation="validate"
            )
            workers = {
                sample.labels["worker"]
                for sample in families["cpsec_uptime_seconds"].samples
            }
            if total == sent and len(workers) >= 2:
                break
            time.sleep(0.2)
        assert total == sent, f"fleet total {total} != {sent} sent"
        assert len(workers) >= 2, f"expected both workers in scrape, saw {workers}"
    finally:
        process.kill()
        process.wait(timeout=30)

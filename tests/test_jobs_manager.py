"""Job-engine lifecycle tests against the in-process service.

The contract under test: any typed operation runs as a background job whose
final payload is **byte-identical** to the synchronous call, with a
monotonic event stream, cooperative cancellation (before start and mid-run),
bounded queueing (typed 429), graceful draining (typed 503), and a journal
that survives restarts.

Timing-sensitive scenarios run against the deterministic harness in
``helpers_jobs``: the slow-job sentinel is gated (:class:`GateService`), so
"the worker is busy" is an announced fact rather than a sleep-and-hope, and
nothing in this module touches ``time.sleep``.
"""

import threading

import pytest

from helpers_jobs import SLOW_SIMULATE, GateService
from repro.jobs import JobJournal, JobManager, read_journal
from repro.progress import OperationCancelled, progress_sink, report_to
from repro.service import (
    AnalysisService,
    AssociateRequest,
    ChainsRequest,
    ConsequencesRequest,
    ExportRequest,
    RecommendRequest,
    ServiceError,
    SimulateRequest,
    Table1Request,
    TopologyRequest,
    ValidateRequest,
    WhatIfRequest,
    canonical_json,
)

SCALE = 0.02

#: One representative request per operation (mirrors the HTTP suite).
REQUESTS = {
    "associate": AssociateRequest(scale=SCALE),
    "table1": Table1Request(scale=SCALE),
    "whatif": WhatIfRequest(scale=SCALE),
    "chains": ChainsRequest(scale=SCALE, limit=3),
    "topology": TopologyRequest(),
    "recommend": RecommendRequest(scale=SCALE, per_component=2),
    "simulate": SimulateRequest(scenario="nominal", duration_s=120.0),
    "consequences": ConsequencesRequest(record="CWE-78", duration_s=120.0),
    "validate": ValidateRequest(),
    "export": ExportRequest(),
}

@pytest.fixture(scope="module")
def service():
    return AnalysisService()


@pytest.fixture()
def gate(service):
    """The gated service: SLOW_SIMULATE jobs block until released/cancelled."""
    gate = GateService(service)
    yield gate
    gate.release()


@pytest.fixture()
def manager(gate):
    manager = JobManager(gate, workers=2)
    yield manager
    manager.close(timeout=10.0)


@pytest.mark.parametrize("operation", sorted(REQUESTS))
def test_job_payload_byte_identical_to_synchronous_call(
    service, manager, operation
):
    request = REQUESTS[operation]
    sync = getattr(service, operation)(request)
    job = manager.submit(operation, request.to_dict())
    manager.wait(job.job_id, timeout=60.0)
    assert job.state == "succeeded"
    assert canonical_json(job.result) == canonical_json(sync.to_dict())


def test_job_events_are_monotonic_and_progress_rich(service):
    # A response-cache-free service guarantees the engine path actually runs
    # (a cached response would legitimately skip the scoring loop).
    uncached = AnalysisService(max_response_cache_entries=0)
    manager = JobManager(uncached, workers=1)
    try:
        job = manager.submit("associate", {"scale": SCALE})
        manager.wait(job.job_id, timeout=60.0)
        assert job.state == "succeeded"
        events = job.events
        # seq is dense and strictly increasing from 0.
        assert [event.seq for event in events] == list(range(len(events)))
        states = [event.state for event in events if event.kind == "state"]
        assert states == ["queued", "running", "succeeded"]
        progress = [event for event in events if event.kind == "progress"]
        assert len(progress) >= 5  # one per centrifuge component
        by_phase: dict = {}
        for event in progress:
            assert 0 <= event.done <= event.total
            assert by_phase.get(event.phase, -1) <= event.done  # monotonic
            by_phase[event.phase] = event.done
        assert by_phase["associate"] == progress[-1].total
    finally:
        manager.close(timeout=10.0)


def test_cancel_mid_run(manager, gate):
    job = manager.submit("simulate", SLOW_SIMULATE)
    gate.wait_started(1)
    manager.cancel(job.job_id)
    manager.wait(job.job_id, timeout=30.0)
    assert job.state == "cancelled"
    assert job.result is None
    assert job.events[-1].kind == "state"
    assert job.events[-1].state == "cancelled"


def test_cancel_before_start(service):
    gate = GateService(service)
    manager = JobManager(gate, workers=1)
    try:
        running = manager.submit("simulate", SLOW_SIMULATE)
        gate.wait_started(1)
        queued = manager.submit("simulate", SLOW_SIMULATE)
        assert queued.state == "queued"
        manager.cancel(queued.job_id)
        assert queued.state == "cancelled"
        assert queued.started_at is None  # never ran
        manager.cancel(running.job_id)
        manager.wait(running.job_id, timeout=30.0)
        assert running.state == "cancelled"
    finally:
        manager.close(timeout=10.0)


def test_cancel_is_idempotent_on_terminal_jobs(manager):
    job = manager.submit("topology", {})
    manager.wait(job.job_id, timeout=30.0)
    assert job.state == "succeeded"
    again = manager.cancel(job.job_id)
    assert again.state == "succeeded"  # a finished job stays finished


def test_queue_full_is_typed_429(service):
    gate = GateService(service)
    manager = JobManager(gate, workers=1, max_queued=1)
    try:
        running = manager.submit("simulate", SLOW_SIMULATE)
        gate.wait_started(1)  # the worker is busy now
        manager.submit("simulate", SLOW_SIMULATE)  # fills the queue
        with pytest.raises(ServiceError) as excinfo:
            manager.submit("topology", {})
        assert excinfo.value.status == 429
        assert excinfo.value.code == "queue_full"
        assert excinfo.value.details["max_queued"] == 1
    finally:
        for job in manager.jobs():
            manager.cancel(job.job_id)
        manager.close(timeout=30.0)


def test_close_cancels_jobs_the_drain_timeout_left_running(service):
    gate = GateService(service)
    manager = JobManager(gate, workers=1)
    job = manager.submit("simulate", SLOW_SIMULATE)
    gate.wait_started(1)
    # A zero-ish drain window cannot outlast a day-long simulation: close()
    # must cancel it cooperatively instead of hanging the process.
    assert manager.close(timeout=0.05) is False
    assert job.state == "cancelled"


def test_draining_manager_refuses_submissions_with_503(manager):
    manager.begin_drain()
    with pytest.raises(ServiceError) as excinfo:
        manager.submit("topology", {})
    assert excinfo.value.status == 503
    assert excinfo.value.code == "shutting_down"


def test_malformed_submissions_fail_fast(manager):
    with pytest.raises(ServiceError) as excinfo:
        manager.submit("shard", {})
    assert excinfo.value.code == "unknown_operation"
    with pytest.raises(ServiceError) as excinfo:
        manager.submit("associate", {"no_such_field": 1})
    assert excinfo.value.code == "unknown_fields"
    assert not manager.jobs()  # nothing was queued


def test_failed_operation_becomes_failed_job(manager):
    job = manager.submit("simulate", {"scenario": "nope"})
    manager.wait(job.job_id, timeout=30.0)
    assert job.state == "failed"
    assert job.error["code"] == "unknown_scenario"
    assert job.error["status"] == 404


def test_history_is_bounded_and_prunes_oldest_terminal_jobs(service):
    manager = JobManager(service, workers=1, max_history=3)
    try:
        jobs = []
        for _ in range(6):
            job = manager.submit("topology", {})
            manager.wait(job.job_id, timeout=30.0)
            jobs.append(job)
        assert all(job.state == "succeeded" for job in jobs)
        remaining = [job.job_id for job in manager.jobs()]
        assert len(remaining) == 3
        assert remaining == [job.job_id for job in jobs[-3:]]  # oldest pruned
        with pytest.raises(ServiceError):
            manager.get(jobs[0].job_id)  # pruned history is a 404
        assert manager.stats()["max_history"] == 3
    finally:
        manager.close(timeout=10.0)


def test_unknown_job_is_typed_404(manager):
    with pytest.raises(ServiceError) as excinfo:
        manager.get("job-doesnotexist")
    assert excinfo.value.status == 404
    assert excinfo.value.code == "unknown_job"


def test_journal_replays_history_and_results(service, tmp_path):
    journal = tmp_path / "jobs.jsonl"
    gate = GateService(service)
    first = JobManager(gate, workers=2, journal_path=journal)
    job = first.submit("associate", {"scale": SCALE})
    first.wait(job.job_id, timeout=60.0)
    cancelled = first.submit("simulate", SLOW_SIMULATE)
    gate.wait_started(1)
    first.cancel(cancelled.job_id)
    first.wait(cancelled.job_id, timeout=30.0)
    assert first.close(timeout=30.0)

    second = JobManager(service, workers=2, journal_path=journal)
    try:
        replayed = second.get(job.job_id)
        assert replayed.replayed
        assert replayed.state == "succeeded"
        # The journalled result is the byte-identical payload itself.
        assert canonical_json(replayed.result) == canonical_json(job.result)
        assert second.get(cancelled.job_id).state == "cancelled"
        # A replayed terminal job streams one terminal event and closes.
        events, done = second.events_since(job.job_id, after=-1, timeout=1.0)
        assert done
        assert [event.state for event in events] == ["succeeded"]
    finally:
        second.close(timeout=10.0)


def test_journal_marks_interrupted_jobs_failed(service, tmp_path):
    journal_path = tmp_path / "jobs.jsonl"
    journal = JobJournal(journal_path)
    # A job that was mid-run when the "process died": submitted + started,
    # never finished.
    journal.append(
        "submitted",
        job_id="job-interrupted1",
        operation="simulate",
        request=SLOW_SIMULATE,
        created_at=1.0,
    )
    journal.append("started", job_id="job-interrupted1", started_at=1.5)
    journal.close()
    # Torn tail: a crash mid-write leaves half a line; replay must survive it.
    with open(journal_path, "a", encoding="utf-8") as handle:
        handle.write('{"v":1,"kind":"finish')

    manager = JobManager(service, workers=1, journal_path=journal_path)
    try:
        job = manager.get("job-interrupted1")
        assert job.state == "failed"
        assert job.error["code"] == "interrupted"
    finally:
        manager.close(timeout=10.0)
    # The interruption was journalled, so a *second* restart replays the
    # same terminal state without re-deriving it.
    entries = read_journal(journal_path)
    finished = [entry for entry in entries if entry["kind"] == "finished"]
    assert finished and finished[-1]["state"] == "failed"
    third = JobManager(service, workers=1, journal_path=journal_path)
    try:
        assert third.get("job-interrupted1").state == "failed"
    finally:
        third.close(timeout=10.0)


def test_progress_sink_is_context_local(engine, centrifuge_model):
    """A sink installed in one thread must never leak into another."""
    seen: list[tuple] = []
    barrier = threading.Barrier(2, timeout=30.0)
    stranger_sink_views: list = []

    def instrumented():
        barrier.wait()
        with report_to(lambda *event: seen.append(event)):
            engine.associate(centrifuge_model)

    def stranger():
        barrier.wait()
        stranger_sink_views.append(progress_sink())

    threads = [
        threading.Thread(target=instrumented),
        threading.Thread(target=stranger),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert seen, "the instrumented thread saw progress"
    assert stranger_sink_views == [None]


def test_cancellation_exception_propagates_from_sink(engine, centrifuge_model):
    def sink(phase, done, total):
        raise OperationCancelled("stop")

    with pytest.raises(OperationCancelled):
        with report_to(sink):
            engine.associate(centrifuge_model)

"""Tests for what-if architectural comparison."""

from repro.analysis.whatif import WhatIfStudy
from repro.casestudies.centrifuge import build_centrifuge_model, hardened_workstation_variant
from repro.graph.attributes import Attribute, Fidelity
from repro.graph.model import Component
from repro.graph.refinement import swap_attribute


def test_hardened_workstation_is_better(engine):
    baseline = build_centrifuge_model()
    variant = hardened_workstation_variant(baseline)
    comparison = WhatIfStudy(engine).compare(baseline, variant)
    assert comparison.variant_is_better
    assert comparison.variant_total < comparison.baseline_total
    assert comparison.baseline_name == baseline.name
    assert comparison.variant_name == variant.name


def test_only_the_swapped_component_changes(engine):
    baseline = build_centrifuge_model()
    variant = hardened_workstation_variant(baseline)
    comparison = WhatIfStudy(engine).compare(baseline, variant)
    changed = comparison.changed_components()
    assert [delta.name for delta in changed] == ["Programming WS"]
    assert changed[0].improved
    assert changed[0].delta_total < 0


def test_identical_architectures_are_equal(engine):
    baseline = build_centrifuge_model()
    comparison = WhatIfStudy(engine).compare(baseline, baseline.copy())
    assert not comparison.variant_is_better
    assert comparison.baseline_total == comparison.variant_total
    assert comparison.changed_components() == ()


def test_worse_variant_is_detected(engine):
    baseline = build_centrifuge_model()
    # Give the temperature transmitter an embedded web server: its CVE
    # population is not present anywhere else in the baseline model, so the
    # system-wide (de-duplicated) total grows.
    worse = swap_attribute(
        baseline, "Temperature Sensor", "temperature measurement",
        Attribute("Apache HTTP Server", fidelity=Fidelity.IMPLEMENTATION,
                  description="Apache HTTP Server embedded web configuration interface"),
    )
    worse.name = "worse-variant"
    comparison = WhatIfStudy(engine).compare(baseline, worse)
    assert not comparison.variant_is_better
    assert comparison.variant_total > comparison.baseline_total


def test_sweep_returns_one_comparison_per_variant(engine):
    baseline = build_centrifuge_model()
    variants = {
        "hardened-ws": hardened_workstation_variant(baseline),
        "identical": baseline.copy(),
    }
    results = WhatIfStudy(engine).sweep(baseline, variants)
    assert set(results) == {"hardened-ws", "identical"}
    assert results["hardened-ws"].variant_is_better
    assert not results["identical"].variant_is_better


def test_component_deltas_cover_all_shared_components(engine, centrifuge_model):
    comparison = WhatIfStudy(engine).compare(centrifuge_model, centrifuge_model.copy())
    assert len(comparison.component_deltas) == len(centrifuge_model)
    assert {delta.name for delta in comparison.component_deltas} == set(
        centrifuge_model.component_names()
    )


def test_rename_surfaces_added_and_removed_components(engine):
    baseline = build_centrifuge_model()
    renamed = baseline.copy("renamed-variant")
    workstation = renamed.component("Programming WS")
    renamed.remove_component("Programming WS")
    renamed.add_component(
        Component(
            name="Engineering Laptop",
            kind=workstation.kind,
            attributes=workstation.attributes,
            description=workstation.description,
        )
    )
    comparison = WhatIfStudy(engine).compare(baseline, renamed)
    assert comparison.added_components == ("Engineering Laptop",)
    assert comparison.removed_components == ("Programming WS",)
    assert comparison.component_set_changed
    # The delta table still only covers shared components.
    assert "Programming WS" not in {d.name for d in comparison.component_deltas}


def test_unchanged_component_sets_report_no_additions(engine):
    baseline = build_centrifuge_model()
    comparison = WhatIfStudy(engine).compare(baseline, baseline.copy())
    assert comparison.added_components == ()
    assert comparison.removed_components == ()
    assert not comparison.component_set_changed


def test_sweep_rescored_only_changed_components(engine):
    baseline = build_centrifuge_model()
    variants = {
        "hardened-ws": hardened_workstation_variant(baseline),
        "identical": baseline.copy(),
    }
    before = engine.stats.snapshot()
    WhatIfStudy(engine).sweep(baseline, variants)
    after = engine.stats.snapshot()
    scored = after["components_scored"] - before["components_scored"]
    reused = after["components_reused"] - before["components_reused"]
    # Baseline: every component scored once.  hardened-ws: only the swapped
    # workstation re-scored.  identical: nothing re-scored.
    assert scored == len(baseline) + 1
    assert reused == (len(baseline) - 1) + len(baseline)

"""Unit and property tests for the pure scheduling policy layer.

:class:`repro.jobs.FairScheduler` and :class:`repro.jobs.TokenBucket` are
deliberately free of threads, locks, and clocks, so everything here is a
plain function of its inputs: stride accounting, priority aging, and token
refill arithmetic are each checked directly, then fairness is checked as a
*property* over seeded random workloads -- per-workspace dispatch share must
converge to the weight share, and no ready job may wait more than a bounded
number of scheduler passes.
"""

import math
import random

import pytest

from repro.jobs import (
    DEFAULT_FLOW,
    FairScheduler,
    TokenBucket,
    default_priority,
)


class Job:
    """The minimal duck-typed job the scheduler schedules."""

    _counter = 0

    def __init__(self, flow=DEFAULT_FLOW, priority="batch", weight=1.0):
        Job._counter += 1
        self.job_id = f"job-{Job._counter:05d}"
        self.flow = flow
        self.priority = priority
        self.weight = weight

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<{self.job_id} {self.flow} {self.priority} w={self.weight}>"


def drain(scheduler):
    order = []
    while True:
        job = scheduler.pop_next()
        if job is None:
            return order
        order.append(job)


# ---------------------------------------------------------------------------
# default priorities


def test_default_priority_classes():
    assert default_priority("whatif") == "batch"
    assert default_priority("simulate") == "batch"
    for operation in ("topology", "associate", "validate", "merge"):
        assert default_priority(operation) == "interactive"


# ---------------------------------------------------------------------------
# basic scheduler behavior


def test_fifo_policy_preserves_submission_order_within_class():
    scheduler = FairScheduler(policy="fifo")
    jobs = [Job(flow=f"ws{i % 3}") for i in range(6)]
    for job in jobs:
        scheduler.add(job)
    assert drain(scheduler) == jobs


def test_interactive_preempts_batch():
    scheduler = FairScheduler()
    batch = [Job(priority="batch") for _ in range(3)]
    interactive = [Job(priority="interactive") for _ in range(3)]
    for job in batch + interactive:
        scheduler.add(job)
    order = drain(scheduler)
    assert order[:3] == interactive
    assert order[3:] == batch


def test_batch_ages_past_a_starving_interactive_stream():
    """After ``starvation_limit`` interactive dispatches, batch gets a turn."""
    limit = 4
    scheduler = FairScheduler(starvation_limit=limit)
    starving = Job(priority="batch")
    scheduler.add(starving)
    dispatched = 0
    while True:
        scheduler.add(Job(priority="interactive"))
        job = scheduler.pop_next()
        dispatched += 1
        if job is starving:
            break
        assert dispatched <= limit + 1, "batch starved past the aging bound"
    assert scheduler.info()["aged_batch_dispatches"] == 1


def test_remove_forgets_a_queued_job():
    scheduler = FairScheduler()
    keep, drop = Job(), Job()
    scheduler.add(keep)
    scheduler.add(drop)
    assert scheduler.remove(drop) is True
    assert scheduler.remove(drop) is False  # idempotent
    assert drain(scheduler) == [keep]


def test_weighted_flows_interleave_by_stride():
    """Weight 2 vs weight 1: the heavy flow gets two dispatches per light one."""
    scheduler = FairScheduler()
    heavy = [Job(flow="heavy", weight=2.0) for _ in range(8)]
    light = [Job(flow="light", weight=1.0) for _ in range(4)]
    for job in heavy + light:
        scheduler.add(job)
    order = drain(scheduler)
    # Count heavy dispatches in every successive window of 3: always 2.
    flows = [job.flow for job in order]
    for start in range(0, len(flows) - 2, 3):
        window = flows[start : start + 3]
        assert window.count("heavy") == 2, (start, flows)


def test_idle_flow_does_not_bank_credit():
    """A flow that sat idle re-enters at the current virtual time.

    Without the ``max(pass, virtual_time)`` clamp the returning flow would
    monopolize the scheduler until its stale pass value caught up.
    """
    scheduler = FairScheduler()
    for _ in range(50):
        scheduler.add(Job(flow="busy"))
    for _ in range(50):
        scheduler.pop_next()
    # "returner" was never active while busy accumulated passes.
    returner = [Job(flow="returner") for _ in range(4)]
    busy = [Job(flow="busy") for _ in range(4)]
    for job in returner + busy:
        scheduler.add(job)
    flows = [job.flow for job in drain(scheduler)]
    # Fair from here on: neither flow gets more than one dispatch ahead.
    for index in range(len(flows)):
        seen = flows[: index + 1]
        assert abs(seen.count("returner") - seen.count("busy")) <= 1


def test_info_reports_depth_and_flows():
    scheduler = FairScheduler()
    scheduler.add(Job(flow="ws1", priority="interactive"))
    scheduler.add(Job(flow="ws1"))
    scheduler.add(Job(flow="ws2", weight=3.0))
    info = scheduler.info()
    assert info["policy"] == "fair"
    assert info["depth"] == {"interactive": 1, "batch": 2}
    assert info["flows"]["ws1"]["queued"] == 2
    assert info["flows"]["ws2"]["weight"] == 3.0
    assert scheduler.queued == 3


def test_scheduler_rejects_bad_configuration():
    with pytest.raises(ValueError):
        FairScheduler(policy="lottery")
    with pytest.raises(ValueError):
        FairScheduler(starvation_limit=0)


# ---------------------------------------------------------------------------
# property-based fairness


@pytest.mark.parametrize("seed", range(5))
def test_dispatch_share_converges_to_weight_share(seed):
    """Per-flow completed-work share converges to its weight ratio.

    Keep every flow saturated (refill after each dispatch) so the stride
    accounting is the only thing deciding shares, and check the observed
    dispatch fraction is within 10% relative error of the weight fraction.
    """
    rng = random.Random(seed)
    flows = {
        f"ws{i}": rng.choice([0.5, 1.0, 2.0, 4.0]) for i in range(rng.randint(2, 5))
    }
    scheduler = FairScheduler()
    backlog = {flow: 3 for flow in flows}
    for flow, weight in flows.items():
        for _ in range(backlog[flow]):
            scheduler.add(Job(flow=flow, weight=weight))
    counts = {flow: 0 for flow in flows}
    rounds = 2000
    for _ in range(rounds):
        job = scheduler.pop_next()
        counts[job.flow] += 1
        # Saturate: the finished slot is immediately refilled.
        scheduler.add(Job(flow=job.flow, weight=flows[job.flow]))
    total_weight = sum(flows.values())
    for flow, weight in flows.items():
        expected = weight / total_weight
        observed = counts[flow] / rounds
        assert observed == pytest.approx(expected, rel=0.10), (
            flow,
            flows,
            counts,
        )


@pytest.mark.parametrize("seed", range(5))
def test_no_ready_flow_starves_beyond_bounded_passes(seed):
    """A saturated flow is dispatched at least every K scheduler passes.

    Stride scheduling's delay guarantee: with every flow always holding
    ready work, flow *f* must be served at least once in every
    ``ceil(total_weight / weight_f)`` consecutive passes (plus one pass of
    slack for the dispatch that triggers the check).  This is the "no ready
    job starves" bound -- it holds for *every* window of the run, not just
    on average.
    """
    rng = random.Random(100 + seed)
    flows = {
        f"ws{i}": rng.choice([0.5, 1.0, 2.0]) for i in range(rng.randint(3, 5))
    }
    scheduler = FairScheduler()
    for flow, weight in flows.items():
        for _ in range(2):
            scheduler.add(Job(flow=flow, weight=weight))
    total_weight = sum(flows.values())
    last_served = {flow: 0 for flow in flows}
    for tick in range(1, 2001):
        job = scheduler.pop_next()
        gap = tick - last_served[job.flow]
        bound = math.ceil(total_weight / flows[job.flow]) + 1
        assert gap <= bound, (
            f"{job.flow} (weight {flows[job.flow]}) waited {gap} passes "
            f"(bound {bound}) among {flows}"
        )
        last_served[job.flow] = tick
        scheduler.add(Job(flow=job.flow, weight=flows[job.flow]))


# ---------------------------------------------------------------------------
# token buckets


def test_token_bucket_grants_burst_then_throttles():
    bucket = TokenBucket(rate=1.0, burst=2, now=0.0)
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) == 0.0
    retry = bucket.try_take(0.0)
    assert retry == pytest.approx(1.0)  # one full token at 1/s


def test_token_bucket_refills_with_elapsed_time():
    bucket = TokenBucket(rate=2.0, burst=1, now=0.0)
    assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) > 0.0
    assert bucket.try_take(0.5) == 0.0  # 0.5s * 2/s = 1 token back


def test_token_bucket_caps_at_burst():
    bucket = TokenBucket(rate=10.0, burst=2, now=0.0)
    # A long idle period must not bank more than ``burst`` tokens.
    assert bucket.try_take(1000.0) == 0.0
    assert bucket.try_take(1000.0) == 0.0
    assert bucket.try_take(1000.0) > 0.0


def test_token_bucket_rejects_bad_configuration():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1, now=0.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0, now=0.0)

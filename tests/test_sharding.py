"""Sharded-index pruning: exactness, counters, and persistence.

The shard maps partition each record kind by platform/theme key so the
TF-IDF scorers can skip shards whose vocabulary cannot intersect the query.
The optimization is only admissible if it is *exact*: a sharded engine must
return bit-identical associations to a monolithic (``sharded=False``,
uncached) engine across every scorer, both fidelity modes, and both case
studies -- and the pruning must be observable through the stats counters.
"""

from __future__ import annotations

import pytest

from helpers_equivalence import association_signature
from repro.casestudies.centrifuge import build_centrifuge_model
from repro.casestudies.uav import build_uav_model
from repro.corpus.schema import RecordKind
from repro.corpus.seed import seed_corpus
from repro.search.engine import SCORERS, SearchEngine
from repro.search.sharding import OTHER_SHARD, ShardMap, shard_key_for_record
from repro.search.tfidf import TfIdfModel
from repro.workspace import Workspace

MODELS = {
    "centrifuge": build_centrifuge_model,
    "uav": build_uav_model,
}


# -- shard map unit behavior ---------------------------------------------------


def test_shard_keys_derive_from_platform_theme_tags(small_corpus):
    vulnerability = small_corpus.vulnerabilities[0]
    assert shard_key_for_record(vulnerability) == (
        vulnerability.affected_platforms[0].lower()
    )
    weakness = small_corpus.weaknesses[0]
    expected = (
        weakness.platforms[0].lower() if weakness.platforms else OTHER_SHARD
    )
    assert shard_key_for_record(weakness) == expected


def test_shard_map_build_is_deterministic(small_corpus):
    records = small_corpus.vulnerabilities
    first = ShardMap.build(records, max_shards=8)
    second = ShardMap.build(records, max_shards=8)
    assert first.keys == second.keys
    assert first.assignments == second.assignments
    assert len(first.assignments) == len(records)


def test_shard_map_pools_long_tail_into_other(small_corpus):
    records = small_corpus.vulnerabilities
    distinct = {shard_key_for_record(record) for record in records}
    bound = max(2, len(distinct) - 2)
    shard_map = ShardMap.build(records, max_shards=bound)
    assert len(shard_map.keys) <= bound
    assert OTHER_SHARD in shard_map.keys
    # Every record is assigned, and assignments stay in range.
    assert len(shard_map.assignments) == len(records)
    assert max(shard_map.assignments) < len(shard_map.keys)


def test_shard_map_round_trips_through_dict(small_corpus):
    shard_map = ShardMap.build(small_corpus.weaknesses, max_shards=8)
    rebuilt = ShardMap.from_dict(shard_map.to_dict())
    assert rebuilt.keys == shard_map.keys
    assert rebuilt.assignments == shard_map.assignments
    with pytest.raises(ValueError):
        ShardMap.from_dict({"keys": ["a"], "assignments": [3]})
    with pytest.raises(ValueError):
        ShardMap.from_dict({"keys": ["a", "a"], "assignments": []})


def test_shard_map_extension_reuses_and_appends_keys(small_corpus):
    records = small_corpus.vulnerabilities
    shard_map = ShardMap.build(records, max_shards=32)
    before_keys = list(shard_map.keys)
    new_keys, assignments = shard_map.assign_extension(records[:3], 32)
    # Known platforms reuse their shard: no new keys, in-range assignments.
    assert new_keys == []
    assert shard_map.keys == before_keys
    assert all(0 <= shard < len(before_keys) for shard in assignments)
    assert len(shard_map.assignments) == len(records) + 3


# -- exactness -----------------------------------------------------------------


@pytest.fixture(scope="module", params=SCORERS)
def scorer(request):
    return request.param


@pytest.fixture(scope="module", params=(True, False), ids=("fidelity", "no-fidelity"))
def fidelity_aware(request):
    return request.param


@pytest.fixture(scope="module")
def engine_pair(small_corpus, scorer, fidelity_aware):
    """A sharded engine and its monolithic uncached reference."""
    sharded = SearchEngine(small_corpus, scorer=scorer, fidelity_aware=fidelity_aware)
    reference = SearchEngine(
        small_corpus,
        scorer=scorer,
        fidelity_aware=fidelity_aware,
        sharded=False,
        enable_cache=False,
    )
    return sharded, reference


@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_sharded_engine_is_bit_identical_to_monolithic(engine_pair, model_name):
    sharded, reference = engine_pair
    model = MODELS[model_name]()
    assert association_signature(sharded.associate(model)) == association_signature(
        reference.associate(model)
    )


def test_pruned_scoring_matches_dense_scoring_per_text(small_corpus):
    """Model-level check: pruned and dense paths agree per query, exactly."""
    sharded = SearchEngine(small_corpus)
    dense = SearchEngine(small_corpus, sharded=False)
    texts = [
        "National Instruments LabVIEW",
        "Cisco ASA 5506-X firewall appliance",
        "Microsoft Windows 7 SP1 workstation",
        "MODBUS TCP fieldbus communication",
    ]
    for kind in RecordKind:
        for text in texts:
            assert sharded._models[kind].coverage(text) == dense._models[
                kind
            ].coverage(text)
            assert sharded._models[kind].score(text) == dense._models[kind].score(
                text
            )


def test_pruning_counters_fire_and_surface(small_corpus, centrifuge_model):
    engine = SearchEngine(small_corpus)
    engine.associate(centrifuge_model)
    assert engine.stats.shards_skipped > 0
    assert engine.stats.candidates_pruned > 0
    info = engine.cache_info()
    assert info["shards_skipped"] == engine.stats.shards_skipped
    assert info["candidates_pruned"] == engine.stats.candidates_pruned
    health = engine.health_info()
    assert health["stats"]["candidates_pruned"] == engine.stats.candidates_pruned


def test_unsharded_engine_never_prunes(small_corpus, centrifuge_model):
    engine = SearchEngine(small_corpus, sharded=False)
    engine.associate(centrifuge_model)
    assert engine.stats.shards_skipped == 0
    assert engine.stats.candidates_pruned == 0
    assert engine._shard_maps == {}


def test_model_with_stale_shard_map_disables_pruning(small_corpus):
    """Documents added without extending the map degrade to dense scoring."""
    from repro.search.index import InvertedIndex

    index = InvertedIndex()
    for record in small_corpus.weaknesses:
        index.add_document(record.identifier, record.text)
    shard_map = ShardMap.build(small_corpus.weaknesses, max_shards=8)
    model = TfIdfModel(index, shard_map=shard_map).fit()
    assert model._shard_positions is not None
    index.add_document("CWE-999999", "freshly appended weakness text")
    model._ensure_current()  # auto-refit: map no longer covers the index
    assert model._shard_positions is None
    # ...and scoring still works (dense path) with exact auto-refit results.
    fresh = TfIdfModel(index).fit()
    assert model.score("weakness text") == fresh.score("weakness text")


# -- persistence ---------------------------------------------------------------


def test_workspace_round_trips_shard_maps(tmp_path, small_corpus):
    workspace = Workspace.from_engine(SearchEngine(small_corpus))
    path = workspace.save(tmp_path / "ws.cpsecws")
    loaded = Workspace.load(path)
    engine = loaded.engine()
    assert set(engine._shard_maps) == set(RecordKind)
    model = build_centrifuge_model()
    reference = SearchEngine(small_corpus, sharded=False, enable_cache=False)
    assert association_signature(engine.associate(model)) == association_signature(
        reference.associate(model)
    )
    engine.associate(model)
    assert engine.stats.candidates_pruned > 0


def test_loaded_workspace_honours_sharded_off_override(tmp_path, small_corpus):
    workspace = Workspace.from_engine(SearchEngine(small_corpus))
    path = workspace.save(tmp_path / "ws.cpsecws")
    engine = Workspace.load(path).engine(sharded=False)
    assert engine._shard_maps == {}


def test_seed_only_corpus_shards_without_error(seed_only_corpus):
    engine = SearchEngine(seed_only_corpus)
    model = build_centrifuge_model()
    reference = SearchEngine(seed_only_corpus, sharded=False, enable_cache=False)
    assert association_signature(engine.associate(model)) == association_signature(
        reference.associate(model)
    )

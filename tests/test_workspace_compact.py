"""``workspace compact``: folding delta frames back into base sections.

``Workspace.compact`` rewrites an artifact with accumulated ``CPSECWSX``
delta frames (and any crash-torn tail) as a single page-aligned v2 base
frame.  It must be *exact* -- an engine over the compacted artifact returns
bit-identical associations to both the pre-compact state and a from-scratch
build over the merged corpus -- and *atomic* -- the rewrite is
write-temp-then-rename, so concurrent readers keep serving the old bytes.
The service's ``compact`` operation layers typed errors and artifact
swapping on top, exactly like ``extend``.
"""

from __future__ import annotations

import pytest

from helpers_equivalence import association_signature
from repro.casestudies.centrifuge import build_centrifuge_model
from repro.corpus.synthesis import build_corpus, build_extension_corpus
from repro.search.engine import SearchEngine
from repro.service.client import ServiceClient
from repro.service.http import start_server
from repro.service.protocol import (
    AssociateRequest,
    CompactRequest,
    ServiceError,
)
from repro.service.service import AnalysisService
from repro.workspace import DELTA_MAGIC, Workspace

TEST_SCALE = 0.03


@pytest.fixture(scope="module")
def base_artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("compact") / "base.cpsecws"
    Workspace.build(scale=TEST_SCALE).save(path)
    return path


@pytest.fixture(scope="module")
def delta_records():
    return list(build_extension_corpus(count=25, seed=42).all_records())


@pytest.fixture(scope="module")
def second_delta_records():
    return list(
        build_extension_corpus(count=10, seed=43, start_serial=950000).all_records()
    )


def _copy(base_artifact, tmp_path, name="ws.cpsecws"):
    path = tmp_path / name
    path.write_bytes(base_artifact.read_bytes())
    return path


# -- exactness -----------------------------------------------------------------


def test_extend_compact_extend_equals_from_scratch_build(
    base_artifact, tmp_path, delta_records, second_delta_records
):
    path = _copy(base_artifact, tmp_path)
    Workspace.load(path).extend(delta_records, path=path)
    workspace = Workspace.load(path)
    summary = workspace.compact(path)
    assert summary["frames_folded"] == 1
    # Folding a frame trades its overhead for page-alignment padding of the
    # rewritten sections, so the size change is bounded by a few pages in
    # either direction -- not asserted beyond sanity.
    assert abs(summary["bytes_after"] - summary["bytes_before"]) < summary["bytes_before"]
    Workspace.load(path).extend(second_delta_records, path=path)

    merged = build_corpus(scale=TEST_SCALE)
    merged.add_all(delta_records)
    merged.add_all(second_delta_records)
    reference = SearchEngine(merged, sharded=False, enable_cache=False)
    model = build_centrifuge_model()
    reloaded = Workspace.load(path)
    assert association_signature(
        reloaded.engine().associate(model)
    ) == association_signature(reference.associate(model))
    assert len(reloaded.corpus) == len(merged)


def test_compact_output_is_a_single_base_frame(
    base_artifact, tmp_path, delta_records, second_delta_records
):
    path = _copy(base_artifact, tmp_path)
    Workspace.load(path).extend(delta_records, path=path)
    Workspace.load(path).extend(second_delta_records, path=path)
    assert path.read_bytes().count(DELTA_MAGIC) == 2
    summary = Workspace.load(path).compact(path)
    assert summary["frames_folded"] == 2
    raw = path.read_bytes()
    assert DELTA_MAGIC not in raw
    # The compacted file is a well-formed v2 artifact that mmap-loads lazily.
    mapped = Workspace.load(path, mmap=True)
    assert mapped._mmap_pending is not None


def test_compact_is_idempotent(base_artifact, tmp_path, delta_records):
    path = _copy(base_artifact, tmp_path)
    Workspace.load(path).extend(delta_records, path=path)
    Workspace.load(path).compact(path)
    first = path.read_bytes()
    summary = Workspace.load(path).compact(path)
    assert summary["frames_folded"] == 0
    assert path.read_bytes() == first


def test_compact_heals_a_crash_torn_tail(base_artifact, tmp_path, delta_records):
    path = _copy(base_artifact, tmp_path)
    Workspace.load(path).extend(delta_records, path=path)
    raw = path.read_bytes()
    path.write_bytes(raw[:-64])  # tear the appended frame mid-write
    workspace = Workspace.load(path)  # recovers to the pre-extend state
    workspace.compact(path)
    healed = path.read_bytes()
    assert DELTA_MAGIC not in healed
    model = build_centrifuge_model()
    assert association_signature(
        Workspace.load(path).engine().associate(model)
    ) == association_signature(
        Workspace.load(base_artifact).engine().associate(model)
    )


def test_compact_keeps_concurrent_readers_on_the_old_bytes(
    base_artifact, tmp_path, delta_records
):
    """The rewrite is atomic (temp + rename): a reader that mapped the old
    inode keeps serving its consistent state while the path moves on."""
    path = _copy(base_artifact, tmp_path)
    Workspace.load(path).extend(delta_records, path=path)
    reader = Workspace.load(path, mmap=True)
    before = association_signature(
        reader.engine().associate(build_centrifuge_model())
    )
    Workspace.load(path).compact(path)
    # The old map still answers, identically, from the replaced inode...
    assert association_signature(
        reader.engine().associate(build_centrifuge_model())
    ) == before
    # ...and a fresh load of the path sees the compacted artifact, exact too.
    assert association_signature(
        Workspace.load(path).engine().associate(build_centrifuge_model())
    ) == before


def test_compact_requires_an_existing_artifact(base_artifact, tmp_path):
    workspace = Workspace.load(base_artifact)
    with pytest.raises(ValueError, match="not found"):
        workspace.compact(tmp_path / "ghost.cpsecws")


# -- service operation ---------------------------------------------------------


def test_service_compact_folds_and_swaps(base_artifact, tmp_path, delta_records):
    path = _copy(base_artifact, tmp_path)
    Workspace.load(path).extend(delta_records, path=path)
    service = AnalysisService(
        workspaces={"main": path}, default_workspace="main", save_artifacts=False
    )
    before = service.associate(AssociateRequest(scale=TEST_SCALE))
    response = service.compact(CompactRequest(workspace="main"))
    assert response.frames_folded == 1
    assert response.workspace == "main"
    assert response.bytes_after == path.stat().st_size
    assert DELTA_MAGIC not in path.read_bytes()
    # Results are bit-identical across a compact.
    after = service.associate(AssociateRequest(scale=TEST_SCALE))
    assert after.to_dict() == before.to_dict()


def test_service_compact_routes_to_the_default_workspace(
    base_artifact, tmp_path, delta_records
):
    path = _copy(base_artifact, tmp_path)
    Workspace.load(path).extend(delta_records, path=path)
    service = AnalysisService(
        workspaces={"main": path}, default_workspace="main", save_artifacts=False
    )
    response = service.compact(CompactRequest())  # no workspace named
    assert response.workspace == "main"
    assert response.frames_folded == 1


def test_service_compact_rejects_in_memory_workspaces(base_artifact):
    service = AnalysisService(
        workspaces={"mem": Workspace.load(base_artifact)},
        default_workspace="mem",
        save_artifacts=False,
    )
    with pytest.raises(ServiceError) as excinfo:
        service.compact(CompactRequest(workspace="mem"))
    assert excinfo.value.code == "no_artifact"
    assert excinfo.value.status == 409


def test_service_compact_rejects_unknown_and_missing(base_artifact, tmp_path):
    path = _copy(base_artifact, tmp_path)
    service = AnalysisService(
        workspaces={"main": path}, default_workspace="main", save_artifacts=False
    )
    with pytest.raises(ServiceError) as excinfo:
        service.compact(CompactRequest(workspace="ghost"))
    assert excinfo.value.code == "unknown_workspace"
    path.unlink()
    with pytest.raises(ServiceError) as excinfo:
        service.compact(CompactRequest(workspace="main"))
    assert excinfo.value.code == "workspace_not_found"
    assert excinfo.value.status == 404


def test_service_compact_without_any_workspace_is_typed(base_artifact):
    service = AnalysisService(save_artifacts=False)
    with pytest.raises(ServiceError) as excinfo:
        service.compact(CompactRequest())
    assert excinfo.value.code == "no_workspace"
    assert excinfo.value.status == 409


# -- HTTP round-trip -----------------------------------------------------------


def test_compact_round_trips_over_http(base_artifact, tmp_path, delta_records):
    path = _copy(base_artifact, tmp_path)
    Workspace.load(path).extend(delta_records, path=path)
    service = AnalysisService(
        workspaces={"main": path}, default_workspace="main", save_artifacts=False
    )
    server = start_server(service, port=0)
    try:
        import threading

        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        response = client.compact(CompactRequest(workspace="main"))
        assert response.frames_folded == 1
        assert response.workspace == "main"
        with pytest.raises(ServiceError) as excinfo:
            client.compact(CompactRequest(workspace="ghost"))
        assert excinfo.value.code == "unknown_workspace"
    finally:
        server.shutdown()
        server.server_close()

"""Tests for the TF-IDF model."""

import pytest

from repro.search.index import InvertedIndex
from repro.search.tfidf import TfIdfModel


def build_model() -> TfIdfModel:
    index = InvertedIndex()
    index.add_documents(
        [
            ("linux1", "buffer overflow in the Linux kernel network stack"),
            ("linux2", "Linux kernel use after free in the scheduler"),
            ("web1", "cross-site scripting in a web management interface"),
            ("asa1", "remote code execution in Cisco ASA firewall VPN portal"),
        ]
    )
    return TfIdfModel(index).fit()


def test_idf_is_higher_for_rarer_tokens():
    model = build_model()
    assert model.inverse_document_frequency("cisco") > model.inverse_document_frequency("linux")


def test_idf_of_unseen_token_is_maximal():
    model = build_model()
    unseen = model.inverse_document_frequency("zzzz")
    seen = model.inverse_document_frequency("linux")
    assert unseen > seen


def test_idf_on_empty_index_is_zero():
    model = TfIdfModel(InvertedIndex())
    assert model.inverse_document_frequency("anything") == 0.0


def test_document_norm_requires_fit():
    index = InvertedIndex()
    index.add_document("d", "some text here")
    model = TfIdfModel(index)
    with pytest.raises(KeyError):
        model.document_norm("d")
    model.fit()
    assert model.document_norm("d") > 0


def test_query_vector_weights_are_positive():
    model = build_model()
    vector = model.query_vector("Linux kernel")
    assert set(vector) == {"linux", "kernel"}
    assert all(weight > 0 for weight in vector.values())


def test_score_ranks_matching_documents_first():
    model = build_model()
    results = model.score("Linux kernel")
    assert results
    doc_ids = [doc_id for doc_id, _ in results]
    assert set(doc_ids) == {"linux1", "linux2"}
    assert all(0.0 < score <= 1.0 + 1e-9 for _, score in results)


def test_score_empty_query_returns_nothing():
    model = build_model()
    assert model.score("") == []
    assert model.score("the and of") == []


def test_score_is_deterministically_ordered():
    model = build_model()
    assert model.score("kernel overflow") == model.score("kernel overflow")


def test_score_min_score_filters():
    model = build_model()
    all_results = model.score("Cisco ASA firewall")
    assert all_results
    top_score = all_results[0][1]
    filtered = model.score("Cisco ASA firewall", min_score=top_score + 0.01)
    assert filtered == []


def test_exact_document_text_scores_near_one():
    model = build_model()
    results = model.score("cross-site scripting in a web management interface")
    best_id, best_score = results[0]
    assert best_id == "web1"
    assert best_score > 0.9


def test_score_without_explicit_fit_lazily_fits():
    index = InvertedIndex()
    index.add_document("d", "linux kernel overflow")
    model = TfIdfModel(index)
    assert model.score("linux")  # triggers the lazy fit path


def test_fit_precomputes_idf_and_weighted_postings():
    model = build_model()
    for token in model.index.tokens():
        doc_ids = model.posting_doc_ids(token)
        weighted = model.weighted_postings(token)
        assert doc_ids == tuple(doc_id for doc_id, _ in weighted)
        assert all(weight > 0 for _, weight in weighted)
    assert model.posting_doc_ids("zzzz") == ()
    assert model.weighted_postings("zzzz") == ()


def test_model_refits_when_index_grows():
    index = InvertedIndex()
    index.add_document("d1", "linux kernel overflow")
    model = TfIdfModel(index).fit()
    # "kernel" stays in one document while the collection grows, so its IDF
    # must rise after the refit.
    idf_before = model.inverse_document_frequency("kernel")
    index.add_document("d2", "linux scheduler bug")
    # The precomputed table is refreshed transparently on the next query.
    assert model.score("linux")
    idf_after = model.inverse_document_frequency("kernel")
    assert idf_after > idf_before
    assert model.document_norm("d2") > 0


def test_document_norm_refreshes_after_index_growth():
    index = InvertedIndex()
    index.add_document("d1", "linux kernel overflow")
    model = TfIdfModel(index).fit()
    stale_norm = model.document_norm("d1")
    index.add_document("d2", "linux scheduler bug")
    # A fitted model refits transparently: the old document's norm reflects
    # the new IDFs and the new document has a norm at all.
    fresh = TfIdfModel(index).fit()
    assert model.document_norm("d1") == fresh.document_norm("d1")
    assert model.document_norm("d1") != stale_norm
    assert model.document_norm("d2") == fresh.document_norm("d2")

"""Concurrent use of one shared service must change nothing but wall-clock.

This is the workload the PR 1-2 infrastructure (thread-safe LRU caches,
lock-protected :class:`EngineStats`) was built for: N threads issuing mixed
``associate`` / ``whatif`` / ``chains`` requests against one warm in-process
service.  Two properties are pinned:

* every concurrent response is **byte-identical** to the serial single-shot
  response for the same request, and
* the stats counters stay exactly consistent -- every increment goes through
  a lock, so the totals equal the arithmetic of the request mix (a single
  lost update would break the equality).
"""

import threading

from repro.casestudies.centrifuge import (
    build_centrifuge_model,
    hardened_workstation_variant,
)
from repro.service import (
    AnalysisService,
    AssociateRequest,
    ChainsRequest,
    WhatIfRequest,
    canonical_json,
)

SCALE = 0.02
THREADS = 8
ROUNDS = 3

MIX = (
    ("associate", AssociateRequest(scale=SCALE)),
    ("whatif", WhatIfRequest(scale=SCALE)),
    ("chains", ChainsRequest(scale=SCALE, limit=5)),
)


def _serial_references() -> dict[str, str]:
    service = AnalysisService()
    return {
        operation: canonical_json(getattr(service, operation)(request).to_dict())
        for operation, request in MIX
    }


def test_concurrent_mixed_requests_are_byte_identical_to_serial():
    expected = _serial_references()
    # Response caching disabled: every request must recompute through the
    # engine's caches concurrently, which is the contention being tested.
    service = AnalysisService(max_response_cache_entries=0)
    results: list[tuple[str, str, str | None]] = []
    results_lock = threading.Lock()
    barrier = threading.Barrier(THREADS)

    def hammer(offset: int) -> None:
        barrier.wait()  # maximize interleaving: everyone starts together
        for round_index in range(ROUNDS):
            # Stagger the mix per thread so different operations overlap.
            for step in range(len(MIX)):
                operation, request = MIX[(offset + round_index + step) % len(MIX)]
                try:
                    payload = canonical_json(
                        getattr(service, operation)(request).to_dict()
                    )
                    failure = None
                except Exception as error:  # noqa: BLE001 - recorded for assert
                    payload, failure = "", f"{type(error).__name__}: {error}"
                with results_lock:
                    results.append((operation, payload, failure))

    threads = [
        threading.Thread(target=hammer, args=(index,)) for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(results) == THREADS * ROUNDS * len(MIX)
    for operation, payload, failure in results:
        assert failure is None, f"{operation} raised under concurrency: {failure}"
        assert payload == expected[operation], f"{operation} diverged under concurrency"


def test_engine_stats_have_no_lost_updates_under_concurrency():
    baseline = build_centrifuge_model()
    variant = hardened_workstation_variant(baseline)
    base_by_name = {component.name: component for component in baseline.components}
    changed = [
        component
        for component in variant.components
        if component.attributes != base_by_name[component.name].attributes
    ]
    assert changed  # the hardened variant must actually edit something

    # Response caching off so every request exercises the counters; the
    # arithmetic below assumes each request recomputes.
    service = AnalysisService(max_response_cache_entries=0)
    engine = service._engine(SCALE, "coverage")
    before = engine.stats.snapshot()

    barrier = threading.Barrier(THREADS)

    def hammer() -> None:
        barrier.wait()
        for _ in range(ROUNDS):
            for operation, request in MIX:
                getattr(service, operation)(request)

    threads = [threading.Thread(target=hammer) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    after = engine.stats.snapshot()
    total = THREADS * ROUNDS  # executions of each MIX entry

    # associate and chains each fully associate the baseline; whatif
    # associates the baseline and then re-scores only the changed components,
    # reusing the rest from the baseline association.
    components = len(baseline.components)
    expected_scored = (
        total * components          # associate
        + total * components        # chains
        + total * (components + len(changed))  # whatif: baseline + edits
    )
    expected_reused = total * (components - len(changed))
    assert after["components_scored"] - before["components_scored"] == expected_scored
    assert after["components_reused"] - before["components_reused"] == expected_reused

    # Every scored component walks its attributes through match_attribute,
    # which bumps exactly one of hits/misses per call -- so the sum is exact
    # even though the hit/miss split depends on thread timing.
    baseline_attribute_calls = sum(
        len(component.attributes) for component in baseline.components
    )
    changed_attribute_calls = sum(len(component.attributes) for component in changed)
    expected_attribute_calls = (
        2 * total * baseline_attribute_calls  # associate + chains
        + total * (baseline_attribute_calls + changed_attribute_calls)  # whatif
    )
    observed_attribute_calls = (
        after["attribute_cache_hits"]
        + after["attribute_cache_misses"]
        - before["attribute_cache_hits"]
        - before["attribute_cache_misses"]
    )
    assert observed_attribute_calls == expected_attribute_calls


def test_response_cache_is_shared_and_exact_under_concurrency():
    expected = _serial_references()
    service = AnalysisService()  # response cache on (the server default)
    results: list[tuple[str, str]] = []
    results_lock = threading.Lock()
    barrier = threading.Barrier(THREADS)

    def hammer() -> None:
        barrier.wait()
        for _ in range(ROUNDS):
            for operation, request in MIX:
                payload = canonical_json(
                    getattr(service, operation)(request).to_dict()
                )
                with results_lock:
                    results.append((operation, payload))

    threads = [threading.Thread(target=hammer) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for operation, payload in results:
        assert payload == expected[operation]
    # Once warm, identical requests return equal (isolated) responses.
    assert service.associate(MIX[0][1]) == service.associate(MIX[0][1])

"""Shared helper for the exactness test suites (not collected by pytest)."""

from __future__ import annotations


def association_signature(association):
    """A fully comparable projection of a :class:`SystemAssociation`.

    Captures component order, attribute order, match partition per record
    class, match order, identifiers, and scores -- everything the golden
    equivalence tests must prove identical between engine variants.
    """
    return [
        (
            component_association.component.name,
            [
                (
                    attribute_match.attribute,
                    [
                        (match.identifier, match.kind, match.score)
                        for match in attribute_match.attack_patterns
                    ],
                    [
                        (match.identifier, match.kind, match.score)
                        for match in attribute_match.weaknesses
                    ],
                    [
                        (match.identifier, match.kind, match.score)
                        for match in attribute_match.vulnerabilities
                    ],
                )
                for attribute_match in component_association.attribute_matches
            ],
        )
        for component_association in association.components
    ]

"""Parallel association must be bit-identical to the serial path.

The ``workers=N`` fan-out and the ``associate_many`` batch API are only
admissible if the merge is deterministic: every worker count, batch shape,
and baseline-reuse combination must return the same ``SystemAssociation`` --
same identifiers, same scores, same ordering -- as the serial, uncached
reference engine.  These tests pin that contract across all three scorers
and both fidelity modes, on both case studies, plus randomized what-if
sweeps.
"""

from __future__ import annotations

import random

import pytest

from helpers_equivalence import association_signature
from repro.analysis.whatif import WhatIfStudy
from repro.casestudies.centrifuge import (
    build_centrifuge_model,
    hardened_workstation_variant,
)
from repro.casestudies.uav import build_uav_model
from repro.search.engine import SCORERS, SearchEngine

MODELS = {
    "centrifuge": build_centrifuge_model,
    "uav": build_uav_model,
}

WORKER_COUNTS = (2, 8)


@pytest.fixture(scope="module", params=SCORERS)
def scorer(request):
    return request.param


@pytest.fixture(scope="module", params=(True, False), ids=("fidelity", "no-fidelity"))
def fidelity_aware(request):
    return request.param


@pytest.fixture(scope="module")
def engine_pair(small_corpus, scorer, fidelity_aware):
    """A cached engine (used with workers) and its serial uncached reference."""
    parallel = SearchEngine(small_corpus, scorer=scorer, fidelity_aware=fidelity_aware)
    reference = SearchEngine(
        small_corpus, scorer=scorer, fidelity_aware=fidelity_aware, enable_cache=False
    )
    return parallel, reference


@pytest.mark.parametrize("model_name", sorted(MODELS))
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_associate_equals_serial(engine_pair, model_name, workers):
    parallel, reference = engine_pair
    model = MODELS[model_name]()
    expected = association_signature(reference.associate(model))
    got = parallel.associate(model, workers=workers)
    assert association_signature(got) == expected
    assert got.system is model
    assert got.engine_config == parallel._config_key()
    # A second parallel pass (fully cache-served) stays identical too.
    assert association_signature(parallel.associate(model, workers=workers)) == expected


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_equals_workers_one_bit_for_bit(small_corpus, workers):
    engine = SearchEngine(small_corpus)
    model = build_centrifuge_model()
    serial = engine.associate(model, workers=1)
    engine.clear_caches()
    parallel = engine.associate(model, workers=workers)
    assert association_signature(serial) == association_signature(parallel)


@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_associate_many_equals_per_system_associate(engine_pair, model_name):
    parallel, reference = engine_pair
    baseline = MODELS[model_name]()
    variant = (
        hardened_workstation_variant(baseline)
        if model_name == "centrifuge"
        else baseline.copy("uav-variant")
    )
    if model_name == "uav":
        variant.remove_component(variant.component_names()[-1])
    batch = parallel.associate_many([baseline, variant, baseline], workers=4)
    assert len(batch) == 3
    expected_baseline = association_signature(reference.associate(baseline))
    expected_variant = association_signature(reference.associate(variant))
    assert association_signature(batch[0]) == expected_baseline
    assert association_signature(batch[1]) == expected_variant
    assert association_signature(batch[2]) == expected_baseline
    assert batch[0].system is baseline and batch[1].system is variant


def test_associate_many_scores_each_distinct_component_once(small_corpus):
    engine = SearchEngine(small_corpus)
    model = build_centrifuge_model()
    before = engine.stats.snapshot()
    engine.associate_many([model, model.copy("twin"), model.copy("triplet")])
    after = engine.stats.snapshot()
    # Three systems, identical component sets: one scoring pass total.
    assert after["components_scored"] - before["components_scored"] == len(model)


def test_associate_many_with_baseline_reuses_unchanged_components(small_corpus):
    engine = SearchEngine(small_corpus)
    baseline = build_centrifuge_model()
    variant = hardened_workstation_variant(baseline)
    baseline_association = engine.associate(baseline)
    before = engine.stats.snapshot()
    batch = engine.associate_many([variant], baseline=baseline_association)
    after = engine.stats.snapshot()
    baseline_by_name = {
        association.component.name: association.component
        for association in baseline_association.components
    }
    changed = sum(
        1
        for component in variant.components
        if baseline_by_name.get(component.name) is None
        or baseline_by_name[component.name].attributes != component.attributes
    )
    assert after["components_scored"] - before["components_scored"] == changed
    assert after["components_reused"] - before["components_reused"] == (
        len(variant) - changed
    )
    fresh = SearchEngine(small_corpus, enable_cache=False).associate(variant)
    assert association_signature(batch[0]) == association_signature(fresh)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_reassociate_with_workers_equals_serial(small_corpus, workers):
    engine = SearchEngine(small_corpus)
    baseline = build_centrifuge_model()
    variant = hardened_workstation_variant(baseline)
    baseline_association = engine.associate(baseline)
    incremental = engine.reassociate(baseline_association, variant, workers=workers)
    fresh = SearchEngine(small_corpus, enable_cache=False).associate(variant)
    assert association_signature(incremental) == association_signature(fresh)


@pytest.mark.parametrize("workers", (1, 4))
def test_whatif_sweep_with_workers_equals_serial_study(small_corpus, workers):
    rng = random.Random(11)
    baseline = build_centrifuge_model()
    variants = {"hardened": hardened_workstation_variant(baseline)}
    # A couple of random attribute-dropping variants widen the sweep.
    for number in range(2):
        variant = baseline.copy(f"v{number}")
        target = rng.choice(variant.components)
        if target.attributes:
            variant.replace_component(target.with_attributes(target.attributes[:-1]))
        variants[f"v{number}"] = variant

    study = WhatIfStudy(SearchEngine(small_corpus), workers=workers)
    results = study.sweep(baseline, variants)
    reference_engine = SearchEngine(small_corpus, enable_cache=False)
    baseline_reference = reference_engine.associate(baseline)
    for name, variant in variants.items():
        comparison = results[name]
        reference = reference_engine.associate(variant)
        assert comparison.baseline_total == sum(
            baseline_reference.total_counts().values()
        )
        assert comparison.variant_total == sum(reference.total_counts().values())


def test_stats_stay_consistent_under_parallel_fanout(small_corpus):
    engine = SearchEngine(small_corpus)
    model = build_centrifuge_model()
    engine.associate(model, workers=8)
    snapshot = engine.stats.snapshot()
    assert snapshot["components_scored"] == len(model)
    # The parallel fan-out warms each distinct attribute exactly once
    # (misses), then assembly serves every evaluation from the cache (hits);
    # the locked counters must account for all of them exactly.
    unique_attributes = len(
        {attribute for component in model.components for attribute in component.attributes}
    )
    attribute_evaluations = sum(
        len(component.attributes) for component in model.components
    )
    assert snapshot["attribute_cache_misses"] == unique_attributes
    assert snapshot["attribute_cache_hits"] == attribute_evaluations

"""Tests for the general architectural model (SystemGraph)."""

import pytest

from repro.graph.attributes import Attribute, AttributeKind, Fidelity
from repro.graph.model import Component, ComponentKind, Connection, SystemGraph


def make_graph() -> SystemGraph:
    graph = SystemGraph("test-system")
    graph.add_components(
        [
            Component("A", kind=ComponentKind.EXTERNAL, entry_point=True),
            Component("B", kind=ComponentKind.FIREWALL,
                      attributes=(Attribute("firewall appliance"),)),
            Component("C", kind=ComponentKind.CONTROLLER,
                      attributes=(Attribute("embedded controller"), Attribute("MODBUS"))),
            Component("D", kind=ComponentKind.PLANT),
        ]
    )
    graph.connect(Connection("A", "B", protocol="Ethernet/IP"))
    graph.connect(Connection("B", "C", protocol="MODBUS"))
    graph.connect(Connection("C", "D", medium="analog", bidirectional=False))
    return graph


def test_component_requires_name_and_valid_criticality():
    with pytest.raises(ValueError):
        Component("")
    with pytest.raises(ValueError):
        Component("x", criticality=1.5)


def test_component_text_includes_attributes():
    component = Component(
        "BPCS", description="main controller",
        attributes=(Attribute("NI cRIO 9064", description="CompactRIO controller"),),
    )
    assert "BPCS" in component.text
    assert "main controller" in component.text
    assert "CompactRIO" in component.text


def test_component_attribute_queries():
    component = Component(
        "WS",
        attributes=(
            Attribute("Windows 7", kind=AttributeKind.OPERATING_SYSTEM,
                      fidelity=Fidelity.IMPLEMENTATION),
            Attribute("engineering workstation", kind=AttributeKind.HARDWARE),
        ),
    )
    assert component.attribute_names() == ("Windows 7", "engineering workstation")
    assert len(component.attributes_of_kind(AttributeKind.OPERATING_SYSTEM)) == 1
    assert component.max_fidelity() is Fidelity.IMPLEMENTATION


def test_component_max_fidelity_defaults_to_conceptual():
    assert Component("empty").max_fidelity() is Fidelity.CONCEPTUAL


def test_component_add_attributes_is_functional():
    base = Component("WS")
    extended = base.add_attributes(Attribute("Windows 7"))
    assert base.attributes == ()
    assert extended.attribute_names() == ("Windows 7",)


def test_component_kind_classification():
    assert ComponentKind.CONTROLLER.is_cyber
    assert not ComponentKind.PLANT.is_cyber
    assert ComponentKind.SENSOR.is_physical
    assert not ComponentKind.WORKSTATION.is_physical


def test_connection_validation_and_helpers():
    with pytest.raises(ValueError):
        Connection("", "B")
    connection = Connection("A", "B", protocol="MODBUS")
    assert connection.endpoints() == ("A", "B")
    assert connection.reversed().endpoints() == ("B", "A")
    assert "MODBUS" in connection.text


def test_duplicate_component_rejected():
    graph = SystemGraph()
    graph.add_component(Component("A"))
    with pytest.raises(ValueError):
        graph.add_component(Component("A"))


def test_connect_requires_existing_endpoints():
    graph = SystemGraph()
    graph.add_component(Component("A"))
    with pytest.raises(KeyError):
        graph.connect(Connection("A", "missing"))


def test_basic_accessors():
    graph = make_graph()
    assert len(graph) == 4
    assert "A" in graph and "missing" not in graph
    assert graph.component("C").kind is ComponentKind.CONTROLLER
    assert graph.component_names() == ("A", "B", "C", "D")
    assert [c.name for c in graph] == ["A", "B", "C", "D"]
    with pytest.raises(KeyError):
        graph.component("missing")


def test_entry_points_and_subsystems():
    graph = make_graph()
    assert [c.name for c in graph.entry_points()] == ["A"]
    groups = graph.subsystems()
    assert set(groups) == {""}
    assert len(groups[""]) == 4


def test_neighbors_respects_direction():
    graph = make_graph()
    assert {c.name for c in graph.neighbors("B")} == {"A", "C"}
    # C -> D is unidirectional, so D's neighbours do not include C.
    assert {c.name for c in graph.neighbors("D")} == set()
    assert {c.name for c in graph.neighbors("C")} == {"B", "D"}


def test_connections_of():
    graph = make_graph()
    assert len(graph.connections_of("B")) == 2
    assert len(graph.connections_of("D")) == 1


def test_all_attributes_enumeration():
    graph = make_graph()
    pairs = graph.all_attributes()
    assert len(pairs) == 3
    assert all(isinstance(attr, Attribute) for _, attr in pairs)


def test_reachability_and_paths():
    graph = make_graph()
    assert graph.is_reachable("A", "D")
    assert not graph.is_reachable("D", "A")
    assert graph.shortest_path("A", "D") == ("A", "B", "C", "D")
    assert set(graph.reachable_from("A")) == {"B", "C", "D"}


def test_exposure_distance():
    graph = make_graph()
    assert graph.exposure_distance("A") == 0
    assert graph.exposure_distance("B") == 1
    assert graph.exposure_distance("D") == 3


def test_exposure_distance_unreachable_is_none():
    graph = SystemGraph()
    graph.add_component(Component("entry", entry_point=True))
    graph.add_component(Component("island"))
    assert graph.exposure_distance("island") is None


def test_remove_component_drops_connections():
    graph = make_graph()
    graph.remove_component("B")
    assert "B" not in graph
    assert all("B" not in c.endpoints() for c in graph.connections)
    with pytest.raises(KeyError):
        graph.remove_component("B")


def test_replace_component():
    graph = make_graph()
    replaced = graph.component("C").add_attributes(Attribute("NI RT Linux OS"))
    graph.replace_component(replaced)
    assert "NI RT Linux OS" in graph.component("C").attribute_names()
    with pytest.raises(KeyError):
        graph.replace_component(Component("missing"))


def test_dict_round_trip():
    graph = make_graph()
    clone = SystemGraph.from_dict(graph.to_dict())
    assert clone.component_names() == graph.component_names()
    assert len(clone.connections) == len(graph.connections)
    assert clone.component("C").attribute_names() == graph.component("C").attribute_names()
    assert clone.component("A").entry_point


def test_json_round_trip():
    graph = make_graph()
    clone = SystemGraph.from_json(graph.to_json())
    assert clone.to_dict() == graph.to_dict()


def test_copy_is_independent():
    graph = make_graph()
    clone = graph.copy("clone")
    clone.remove_component("D")
    assert "D" in graph
    assert clone.name == "clone"


def test_to_networkx_carries_components():
    graph = make_graph()
    nxg = graph.to_networkx()
    assert nxg.nodes["C"]["component"].kind is ComponentKind.CONTROLLER

"""Tests for the CVSS v3.1 implementation against published reference scores."""

import pytest

from repro.corpus.cvss import CvssVector, cvss_base_score, severity_rating


#: (vector, expected base score) pairs taken from well-known published CVEs.
REFERENCE_SCORES = [
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8),   # e.g. BlueKeep
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0),  # scope-changed critical
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N", 7.5),   # info disclosure (Heartbleed-like)
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H", 7.5),   # SACK panic
    ("CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H", 7.8),   # local privilege escalation
    ("CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", 8.1),   # EternalBlue
    ("CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N", 6.5),
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N", 6.1),   # reflected XSS
    ("CVSS:3.1/AV:P/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:N", 6.1),
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0),   # no impact
]


@pytest.mark.parametrize(("vector", "expected"), REFERENCE_SCORES)
def test_base_scores_match_reference(vector, expected):
    assert CvssVector.parse(vector).base_score() == pytest.approx(expected)


def test_parse_round_trip():
    text = "CVSS:3.1/AV:A/AC:H/PR:L/UI:R/S:C/C:L/I:H/A:N"
    vector = CvssVector.parse(text)
    assert vector.to_string() == text


def test_parse_rejects_missing_metrics():
    with pytest.raises(ValueError):
        CvssVector.parse("CVSS:3.1/AV:N/AC:L")


def test_parse_rejects_malformed_metric():
    with pytest.raises(ValueError):
        CvssVector.parse("CVSS:3.1/AVN/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")


def test_invalid_metric_values_rejected():
    with pytest.raises(ValueError):
        CvssVector(attack_vector="X")
    with pytest.raises(ValueError):
        CvssVector(scope="X")
    with pytest.raises(ValueError):
        CvssVector(confidentiality="M")


def test_severity_ratings():
    assert severity_rating(0.0) == "None"
    assert severity_rating(3.9) == "Low"
    assert severity_rating(4.0) == "Medium"
    assert severity_rating(6.9) == "Medium"
    assert severity_rating(7.0) == "High"
    assert severity_rating(8.9) == "High"
    assert severity_rating(9.0) == "Critical"
    assert severity_rating(10.0) == "Critical"


def test_severity_rating_rejects_out_of_range():
    with pytest.raises(ValueError):
        severity_rating(-0.1)
    with pytest.raises(ValueError):
        severity_rating(10.1)


def test_vector_severity_shortcut():
    vector = CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")
    assert vector.severity() == "Critical"


def test_network_exploitable_flag():
    network = CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")
    adjacent = CvssVector.parse("CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")
    local = CvssVector.parse("CVSS:3.1/AV:L/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")
    assert network.network_exploitable
    assert adjacent.network_exploitable
    assert not local.network_exploitable


def test_scope_changed_uses_changed_pr_table():
    unchanged = CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H")
    changed = CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:C/C:H/I:H/A:H")
    assert changed.base_score() > unchanged.base_score()


def test_zero_impact_is_zero_regardless_of_exploitability():
    vector = CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:N/I:N/A:N")
    assert vector.base_score() == 0.0


def test_cvss_base_score_function_matches_method():
    vector = CvssVector.parse("CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H")
    assert cvss_base_score(vector) == vector.base_score()

"""Property-based tests (seeded-random generators) for the cached engine.

Each property is exercised over many randomly generated -- but seeded, hence
reproducible -- inputs:

* cache-hit equals cache-miss: repeated and cache-disabled queries return
  identical matches,
* snapshot round-trip preserves the index postings and every TF-IDF score,
* incremental ``reassociate`` equals full ``associate`` for arbitrary
  single-component edits (attribute swap, addition, removal, rename, and
  component add/remove).

The generators use :class:`random.Random` with fixed seeds rather than an
external property-testing framework so failures replay exactly.
"""

from __future__ import annotations

import random

import pytest

from helpers_equivalence import association_signature
from repro.corpus.schema import RecordKind
from repro.graph.attributes import Attribute, AttributeKind, Fidelity
from repro.graph.model import Component, ComponentKind, SystemGraph
from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.tfidf import TfIdfModel

WORDS = (
    "buffer overflow kernel firewall modbus plc scada windows linux firmware "
    "sensor actuator credential injection spoofing replay flooding telemetry "
    "historian workstation gateway vpn portal authentication certificate"
).split()


def random_text(rng: random.Random, max_words: int = 12) -> str:
    return " ".join(rng.choices(WORDS, k=rng.randint(1, max_words)))


def random_index(rng: random.Random, documents: int) -> InvertedIndex:
    index = InvertedIndex()
    for number in range(documents):
        index.add_document(f"DOC-{number}", random_text(rng))
    return index


# -- index / model invariants -------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_snapshot_round_trip_preserves_index_and_scores(seed):
    rng = random.Random(seed)
    index = random_index(rng, documents=rng.randint(1, 40))
    restored = InvertedIndex.from_dict(index.to_dict())

    assert restored.document_ids() == index.document_ids()
    assert len(restored) == len(index)
    assert restored.vocabulary_size == index.vocabulary_size
    for token in index.tokens():
        assert restored.postings(token) == index.postings(token)

    model = TfIdfModel(index).fit()
    restored_model = TfIdfModel(restored).fit()
    for token in index.tokens():
        assert restored_model.inverse_document_frequency(token) == (
            model.inverse_document_frequency(token)
        )
    for doc_id in index.document_ids():
        assert restored_model.document_norm(doc_id) == model.document_norm(doc_id)
    for _ in range(20):
        query = random_text(rng)
        assert restored_model.score(query) == model.score(query)


@pytest.mark.parametrize("seed", range(5))
def test_refit_after_adding_documents_matches_fresh_model(seed):
    rng = random.Random(100 + seed)
    index = random_index(rng, documents=10)
    model = TfIdfModel(index).fit()
    model.score(random_text(rng))  # populate the precomputed tables
    index.add_document("DOC-LATE", random_text(rng))

    fresh = TfIdfModel(index).fit()
    for _ in range(10):
        query = random_text(rng)
        # The stale model must notice the revision change and refit.
        assert model.score(query) == fresh.score(query)
        assert model.query_vector(query) == fresh.query_vector(query)


# -- cache-hit equals cache-miss ----------------------------------------------


@pytest.mark.parametrize("scorer", ("coverage", "cosine", "jaccard"))
def test_cache_hit_equals_cache_miss_on_random_queries(seed_only_corpus, scorer):
    rng = random.Random(7)
    cached = SearchEngine(seed_only_corpus, scorer=scorer)
    uncached = SearchEngine(seed_only_corpus, scorer=scorer, enable_cache=False)
    queries = [random_text(rng) for _ in range(15)]
    # Duplicate queries so the second occurrence is a guaranteed cache hit.
    queries.extend(queries[:5])
    for query in queries:
        for kind in RecordKind:
            first = cached.match_text(query, kind, threshold=0.05)
            again = cached.match_text(query, kind, threshold=0.05)
            reference = uncached.match_text(query, kind, threshold=0.05)
            assert first == again == reference
    assert cached.stats.text_cache_hits > 0
    assert uncached.stats.text_cache_hits == 0


def test_cache_distinguishes_thresholds_and_kinds(seed_only_corpus):
    engine = SearchEngine(seed_only_corpus)
    loose = engine.match_text("windows buffer overflow", RecordKind.WEAKNESS, 0.05)
    tight = engine.match_text("windows buffer overflow", RecordKind.WEAKNESS, 0.5)
    assert len(tight) <= len(loose)
    assert all(match.score >= 0.5 for match in tight)
    patterns = engine.match_text("windows buffer overflow", RecordKind.ATTACK_PATTERN, 0.05)
    assert {m.kind for m in patterns} <= {RecordKind.ATTACK_PATTERN}


# -- incremental reassociate equals full associate ----------------------------


def random_attribute(rng: random.Random) -> Attribute:
    return Attribute(
        name=random_text(rng, max_words=3),
        kind=rng.choice(tuple(AttributeKind)),
        fidelity=rng.choice(tuple(Fidelity)),
        description=random_text(rng, max_words=6),
    )


def random_system(rng: random.Random) -> SystemGraph:
    graph = SystemGraph(name=f"random-{rng.randint(0, 10**6)}")
    for number in range(rng.randint(2, 6)):
        graph.add_component(
            Component(
                name=f"component-{number}",
                kind=rng.choice(tuple(ComponentKind)),
                attributes=tuple(
                    random_attribute(rng) for _ in range(rng.randint(0, 4))
                ),
                description=random_text(rng, max_words=5),
            )
        )
    return graph


def random_single_component_edit(rng: random.Random, graph: SystemGraph) -> SystemGraph:
    variant = graph.copy(f"{graph.name}-variant")
    target = rng.choice(variant.components)
    operation = rng.choice(("swap", "add", "remove", "rename", "drop", "new"))
    if operation == "swap" and target.attributes:
        attributes = list(target.attributes)
        attributes[rng.randrange(len(attributes))] = random_attribute(rng)
        variant.replace_component(target.with_attributes(attributes))
    elif operation == "add":
        variant.replace_component(target.add_attributes(random_attribute(rng)))
    elif operation == "remove" and target.attributes:
        variant.replace_component(target.with_attributes(target.attributes[:-1]))
    elif operation == "rename":
        variant.remove_component(target.name)
        variant.add_component(
            Component(
                name=f"{target.name}-renamed",
                kind=target.kind,
                attributes=target.attributes,
                description=target.description,
            )
        )
    elif operation == "drop" and len(variant) > 1:
        variant.remove_component(target.name)
    else:
        variant.add_component(
            Component(
                name=f"component-new-{rng.randint(0, 10**6)}",
                attributes=tuple(random_attribute(rng) for _ in range(rng.randint(0, 3))),
            )
        )
    return variant


@pytest.mark.parametrize("seed", range(8))
def test_reassociate_equals_associate_for_random_edits(seed_only_corpus, seed):
    rng = random.Random(1000 + seed)
    engine = SearchEngine(seed_only_corpus)
    reference = SearchEngine(seed_only_corpus, enable_cache=False)
    baseline = random_system(rng)
    baseline_association = engine.associate(baseline)
    for _ in range(4):
        variant = random_single_component_edit(rng, baseline)
        incremental = engine.reassociate(baseline_association, variant)
        full = reference.associate(variant)
        assert association_signature(incremental) == association_signature(full)


def test_reassociate_reuses_unchanged_components(seed_only_corpus):
    rng = random.Random(42)
    engine = SearchEngine(seed_only_corpus)
    baseline = random_system(rng)
    baseline_association = engine.associate(baseline)
    variant = baseline.copy("identical")
    before = engine.stats.snapshot()
    engine.reassociate(baseline_association, variant)
    after = engine.stats.snapshot()
    assert after["components_scored"] == before["components_scored"]
    assert after["components_reused"] == before["components_reused"] + len(baseline)

"""Tests for posture metrics."""

import pytest

from repro.analysis.metrics import compute_posture, severity_histogram
from repro.casestudies.centrifuge import build_centrifuge_model, hardened_workstation_variant


def test_totals_match_association(centrifuge_association):
    metrics = compute_posture(centrifuge_association)
    totals = centrifuge_association.total_counts()
    assert metrics.total == sum(totals.values())
    assert metrics.total_vulnerabilities == max(totals.values())
    assert metrics.system_name == centrifuge_association.system.name


def test_component_posture_fields(centrifuge_association):
    metrics = compute_posture(centrifuge_association)
    bpcs = metrics.component("BPCS Platform")
    assert bpcs.total == bpcs.attack_patterns + bpcs.weaknesses + bpcs.vulnerabilities
    assert bpcs.exposure_distance == 3
    assert bpcs.criticality == pytest.approx(0.9)
    assert 0.0 <= bpcs.mean_cvss <= bpcs.max_cvss <= 10.0
    assert bpcs.posture_index > 0
    with pytest.raises(KeyError):
        metrics.component("missing")


def test_posture_index_decays_with_exposure_distance(centrifuge_association):
    near = compute_posture(centrifuge_association, exposure_decay=0.5)
    flat = compute_posture(centrifuge_association, exposure_decay=1.0)
    # With no decay every component index is at least as large as with decay.
    for component in near.components:
        assert flat.component(component.name).posture_index >= component.posture_index


def test_system_posture_is_sum_of_components(centrifuge_association):
    metrics = compute_posture(centrifuge_association)
    assert metrics.system_posture_index == pytest.approx(
        sum(c.posture_index for c in metrics.components)
    )


def test_rankings_are_sorted(centrifuge_association):
    metrics = compute_posture(centrifuge_association)
    posture_ranking = metrics.ranking_by_posture()
    assert [c.posture_index for c in posture_ranking] == sorted(
        [c.posture_index for c in posture_ranking], reverse=True
    )
    cvss_ranking = metrics.ranking_by_cvss()
    assert [c.max_cvss for c in cvss_ranking] == sorted(
        [c.max_cvss for c in cvss_ranking], reverse=True
    )


def test_cvss_ranking_differs_from_posture_ranking(centrifuge_association):
    # The paper's E8 point: severity alone orders components differently from
    # the exposure/criticality-aware posture.
    metrics = compute_posture(centrifuge_association)
    by_posture = [c.name for c in metrics.ranking_by_posture()]
    by_cvss = [c.name for c in metrics.ranking_by_cvss()]
    assert by_posture != by_cvss


def test_hardened_variant_reduces_workstation_posture(engine):
    baseline = build_centrifuge_model()
    variant = hardened_workstation_variant(baseline)
    baseline_metrics = compute_posture(engine.associate(baseline))
    variant_metrics = compute_posture(engine.associate(variant))
    assert (
        variant_metrics.component("Programming WS").total
        < baseline_metrics.component("Programming WS").total
    )
    assert variant_metrics.system_posture_index < baseline_metrics.system_posture_index


def test_severity_histogram_counts_unique_vulnerabilities(centrifuge_association):
    histogram = severity_histogram(centrifuge_association)
    totals = centrifuge_association.total_counts()
    from repro.corpus.schema import RecordKind

    assert sum(histogram.values()) == totals[RecordKind.VULNERABILITY]
    assert set(histogram) == {"None", "Low", "Medium", "High", "Critical"}
    assert histogram["Critical"] + histogram["High"] > 0


def test_weights_change_posture(centrifuge_association):
    heavy_vulns = compute_posture(centrifuge_association, vulnerability_weight=5.0)
    light_vulns = compute_posture(centrifuge_association, vulnerability_weight=0.1)
    assert heavy_vulns.system_posture_index > light_vulns.system_posture_index

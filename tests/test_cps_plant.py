"""Tests for the centrifuge plant model."""

import numpy as np
import pytest

from repro.cps.plant import CentrifugePlant, PlantParameters, PlantState


def test_parameter_validation():
    with pytest.raises(ValueError):
        PlantParameters(max_speed_rpm=0)
    with pytest.raises(ValueError):
        PlantParameters(speed_time_constant_s=0)
    with pytest.raises(ValueError):
        PlantParameters(thermal_capacity=0)


def test_state_array_round_trip():
    state = PlantState(speed_rpm=1234.5, temperature_c=21.0)
    assert PlantState.from_array(state.as_array()) == state


def test_reset_returns_to_ambient_standstill():
    plant = CentrifugePlant()
    plant.step(1.0, 1.0, 0.0)
    plant.reset()
    assert plant.state.speed_rpm == 0.0
    assert plant.state.temperature_c == pytest.approx(
        plant.parameters.ambient_temperature_c
    )


def test_step_requires_positive_dt():
    with pytest.raises(ValueError):
        CentrifugePlant().step(0.0, 0.5, 0.5)


def test_speed_rises_with_drive_and_saturates_at_max():
    plant = CentrifugePlant()
    plant.reset()
    for _ in range(600):
        plant.step(1.0, 1.0, 1.0)
    assert plant.state.speed_rpm == pytest.approx(plant.parameters.max_speed_rpm, abs=1.0)


def test_speed_decays_without_drive():
    plant = CentrifugePlant()
    plant.reset(PlantState(speed_rpm=5000.0, temperature_c=22.0))
    for _ in range(200):
        plant.step(1.0, 0.0, 1.0)
    assert plant.state.speed_rpm < 100.0


def test_temperature_rises_at_speed_without_cooling():
    plant = CentrifugePlant()
    plant.reset(PlantState(speed_rpm=8000.0, temperature_c=22.0))
    start = plant.state.temperature_c
    for _ in range(120):
        plant.step(1.0, 0.8, 0.0)
    assert plant.state.temperature_c > start + 5.0


def test_cooling_lowers_temperature():
    plant = CentrifugePlant()
    plant.reset(PlantState(speed_rpm=0.0, temperature_c=35.0))
    for _ in range(300):
        plant.step(1.0, 0.0, 1.0)
    assert plant.state.temperature_c < 20.0


def test_commands_are_clipped_to_unit_interval():
    plant = CentrifugePlant()
    plant.reset()
    unclipped = plant.derivatives(np.array([0.0, 22.0]), 5.0, 0.0)
    nominal = plant.derivatives(np.array([0.0, 22.0]), 1.0, 0.0)
    assert unclipped[0] == pytest.approx(nominal[0])


def test_heat_disturbance_raises_temperature_derivative():
    plant = CentrifugePlant()
    state = np.array([5000.0, 22.0])
    with_disturbance = plant.derivatives(state, 0.5, 0.5, heat_disturbance_w=5.0)
    without = plant.derivatives(state, 0.5, 0.5, heat_disturbance_w=0.0)
    assert with_disturbance[1] > without[1]


def test_open_loop_simulation_matches_step_integration():
    plant = CentrifugePlant()
    plant.reset()
    times, states = plant.simulate_open_loop(60.0, drive_command=0.5, cooling_command=0.5)
    assert len(times) == len(states)
    stepped = CentrifugePlant()
    stepped.reset()
    for _ in range(600):
        stepped.step(0.1, 0.5, 0.5)
    assert states[-1, 0] == pytest.approx(stepped.state.speed_rpm, rel=0.02)
    assert states[-1, 1] == pytest.approx(stepped.state.temperature_c, abs=0.2)


def test_equilibrium_temperature_matches_long_simulation():
    plant = CentrifugePlant()
    plant.reset(PlantState(speed_rpm=6000.0, temperature_c=22.0))
    predicted = plant.equilibrium_temperature(6000.0, cooling_command=1.0)
    for _ in range(4000):
        plant.step(1.0, 0.5, 1.0)
    assert plant.state.temperature_c == pytest.approx(predicted, abs=1.0)


def test_equilibrium_temperature_increases_with_speed():
    plant = CentrifugePlant()
    assert plant.equilibrium_temperature(9000.0, 1.0) > plant.equilibrium_temperature(3000.0, 1.0)


def test_with_parameters_override():
    plant = CentrifugePlant()
    modified = plant.with_parameters(cooling_capacity=20.0)
    assert modified.parameters.cooling_capacity == 20.0
    assert plant.parameters.cooling_capacity != 20.0
    assert modified.state == plant.state


def test_full_speed_without_cooling_crosses_instability_threshold():
    # The hazard narrative requires that an uncontrolled full-speed run can
    # exceed the 30 degC instability limit used by the hazard monitor.
    plant = CentrifugePlant()
    plant.reset(PlantState(speed_rpm=10_000.0, temperature_c=20.0))
    equilibrium = plant.equilibrium_temperature(10_000.0, cooling_command=0.0)
    assert equilibrium > 30.0

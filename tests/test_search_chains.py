"""Tests for exploit-chain enumeration over the system topology."""

import pytest

from repro.search.chains import chain_summary, find_exploit_chains


def test_chains_exist_from_corporate_network_to_bpcs(centrifuge_association):
    chains = find_exploit_chains(centrifuge_association, "BPCS Platform")
    assert chains
    for chain in chains:
        assert chain.entry == "Corporate Network"
        assert chain.target == "BPCS Platform"
        assert chain.path[0] == "Corporate Network"
        assert chain.path[-1] == "BPCS Platform"


def test_every_hop_carries_an_attack_vector(centrifuge_association):
    chains = find_exploit_chains(centrifuge_association, "SIS Platform")
    assert chains
    for chain in chains:
        assert len(chain.vectors) == len(chain.path)
        for component_name, match in chain.vectors:
            assert component_name in chain.path
            assert match.score > 0


def test_chains_are_ranked_by_score(centrifuge_association):
    chains = find_exploit_chains(centrifuge_association, "BPCS Platform")
    scores = [chain.score for chain in chains]
    assert scores == sorted(scores, reverse=True)


def test_chain_score_is_product_of_hop_scores(centrifuge_association):
    chain = find_exploit_chains(centrifuge_association, "Control Firewall")[0]
    product = 1.0
    for _, match in chain.vectors:
        product *= match.score
    assert chain.score == pytest.approx(product)


def test_unknown_target_raises(centrifuge_association):
    with pytest.raises(KeyError):
        find_exploit_chains(centrifuge_association, "missing")


def test_max_length_limits_paths(centrifuge_association):
    short = find_exploit_chains(centrifuge_association, "BPCS Platform", max_length=2)
    long = find_exploit_chains(centrifuge_association, "BPCS Platform", max_length=6)
    assert all(chain.length <= 2 for chain in short)
    assert len(long) >= len(short)


def test_min_component_score_can_break_chains(centrifuge_association):
    strict = find_exploit_chains(
        centrifuge_association, "BPCS Platform", min_component_score=0.999999
    )
    assert strict == []


def test_chain_describe_mentions_path_and_vectors(centrifuge_association):
    chain = find_exploit_chains(centrifuge_association, "BPCS Platform")[0]
    text = chain.describe()
    assert "Corporate Network" in text
    assert "BPCS Platform" in text
    assert "->" in text


def test_chain_summary(centrifuge_association):
    chains = find_exploit_chains(centrifuge_association, "BPCS Platform")
    summary = chain_summary(chains)
    assert summary["count"] == len(chains)
    assert summary["entry_points"] >= 1
    assert summary["shortest"] >= 1
    assert 0 < summary["best_score"] <= 1.0


def test_chain_summary_empty():
    summary = chain_summary([])
    assert summary == {"count": 0, "best_score": 0.0, "shortest": 0, "entry_points": 0}

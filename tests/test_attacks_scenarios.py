"""Tests for the named attack scenarios and the Triton-like composite."""

from repro.attacks.scenarios import (
    SCENARIO_LIBRARY,
    TritonLikeScenario,
    scenario_for_record,
)
from repro.cps.hazards import HazardKind
from repro.cps.intervention import Intervention
from repro.cps.scada import ScadaSimulation


def test_library_scenarios_are_well_formed():
    assert len(SCENARIO_LIBRARY) >= 6
    for name, scenario in SCENARIO_LIBRARY.items():
        assert scenario.name == name
        assert scenario.description
        assert scenario.records
        assert scenario.target_components
        interventions = scenario.interventions()
        assert interventions
        assert all(isinstance(i, Intervention) for i in interventions)


def test_scenarios_produce_fresh_intervention_instances():
    scenario = SCENARIO_LIBRARY["bpcs-command-injection"]
    first = scenario.interventions()
    second = scenario.interventions()
    assert first[0] is not second[0]


def test_scenario_for_record_resolves_cwe78():
    scenario = scenario_for_record("CWE-78")
    assert scenario is not None
    assert "CWE-78" in scenario.records


def test_scenario_for_record_unknown_returns_none():
    assert scenario_for_record("CWE-99999") is None


def test_triton_like_scenario_defeats_the_safety_layer():
    # The paper's referenced incident: with the SIS disabled, the compromised
    # controller drives the process past the instability limit.
    interventions = TritonLikeScenario(sis_disable_time_s=80.0, injection_time_s=120.0).interventions()
    simulation = ScadaSimulation(interventions=interventions)
    trace = simulation.run(duration_s=420.0, dt=0.5)
    report = trace.hazards()
    assert not simulation.sis.enabled
    assert not simulation.sis.tripped
    assert report.occurred(HazardKind.THERMAL_RUNAWAY)
    assert trace.max_temperature() > 30.0
    assert report.any_safety_hazard


def test_same_injection_with_sis_enabled_is_contained():
    # Ablation of the Triton scenario: without the SIS-disable step the same
    # command injection is stopped by the safety layer.
    triton = SCENARIO_LIBRARY["triton-like-sis-bypass"].interventions()
    injection_only = [i for i in triton if i.name == "cwe-78-command-injection"]
    simulation = ScadaSimulation(interventions=injection_only)
    trace = simulation.run(duration_s=420.0, dt=0.5)
    assert simulation.sis.tripped
    assert not trace.hazards().occurred(HazardKind.THERMAL_RUNAWAY)


def test_controller_blinding_mitm_scenario_overheats_the_process():
    scenario = SCENARIO_LIBRARY["controller-blinding-mitm"]
    simulation = ScadaSimulation(interventions=scenario.interventions())
    trace = simulation.run(duration_s=420.0, dt=0.5)
    # The BPCS is blinded, so the true temperature drifts above its view.
    assert trace.max_temperature() > trace.bpcs_temperature_view_c.max() + 1.0


def test_expected_hazards_documented_for_every_scenario():
    valid_kinds = {kind.value for kind in HazardKind}
    for scenario in SCENARIO_LIBRARY.values():
        assert scenario.expected_hazards
        assert set(scenario.expected_hazards) <= valid_kinds


def test_scenario_records_reference_seed_corpus_entries(seed_only_corpus):
    known = {record.identifier for record in seed_only_corpus.all_records()}
    for scenario in SCENARIO_LIBRARY.values():
        resolvable = [record for record in scenario.records if record in known]
        assert resolvable, f"{scenario.name} references no seed corpus record"

"""Tests for attack-tree construction and analysis."""

import pytest

from repro.baselines.attack_trees import AttackTreeNode, NodeType, build_attack_tree


def test_leaf_cannot_have_children():
    leaf = AttackTreeNode("x", NodeType.LEAF)
    with pytest.raises(ValueError):
        leaf.add(AttackTreeNode("y", NodeType.LEAF))


def test_or_node_cut_sets_are_singletons():
    root = AttackTreeNode("goal", NodeType.OR)
    root.add(AttackTreeNode("a", NodeType.LEAF, record_id="A"))
    root.add(AttackTreeNode("b", NodeType.LEAF, record_id="B"))
    assert set(root.cut_sets()) == {frozenset({"A"}), frozenset({"B"})}


def test_and_node_cut_sets_are_products():
    root = AttackTreeNode("goal", NodeType.AND)
    first = root.add(AttackTreeNode("stage1", NodeType.OR))
    second = root.add(AttackTreeNode("stage2", NodeType.OR))
    first.add(AttackTreeNode("a", NodeType.LEAF, record_id="A"))
    first.add(AttackTreeNode("b", NodeType.LEAF, record_id="B"))
    second.add(AttackTreeNode("c", NodeType.LEAF, record_id="C"))
    assert set(root.cut_sets()) == {frozenset({"A", "C"}), frozenset({"B", "C"})}


def test_cut_sets_are_minimal():
    root = AttackTreeNode("goal", NodeType.OR)
    root.add(AttackTreeNode("a", NodeType.LEAF, record_id="A"))
    both = root.add(AttackTreeNode("both", NodeType.AND))
    both.add(AttackTreeNode("a2", NodeType.LEAF, record_id="A"))
    both.add(AttackTreeNode("b", NodeType.LEAF, record_id="B"))
    # {A} subsumes {A, B}, so only the singleton remains.
    assert root.cut_sets() == [frozenset({"A"})]


def test_and_node_with_empty_child_has_no_cut_sets():
    root = AttackTreeNode("goal", NodeType.AND)
    root.add(AttackTreeNode("possible", NodeType.LEAF, record_id="A"))
    root.add(AttackTreeNode("impossible", NodeType.OR))
    assert root.cut_sets() == []


def test_depth_and_leaves():
    root = AttackTreeNode("goal", NodeType.OR)
    path = root.add(AttackTreeNode("path", NodeType.AND))
    hop = path.add(AttackTreeNode("hop", NodeType.OR))
    hop.add(AttackTreeNode("leaf", NodeType.LEAF, record_id="A"))
    assert root.depth() == 4
    assert len(root.leaves()) == 1


def test_tree_built_from_association(centrifuge_association):
    tree = build_attack_tree(centrifuge_association, "BPCS Platform")
    assert tree.goal == "compromise BPCS Platform"
    assert tree.root.node_type is NodeType.OR
    assert tree.root.children, "at least one attack path should exist"
    assert tree.leaf_count() > 0
    assert tree.depth() >= 4
    assert not tree.mentions_physical_consequence()


def test_tree_leaves_reference_associated_records(centrifuge_association):
    tree = build_attack_tree(centrifuge_association, "SIS Platform")
    associated = set()
    for component in centrifuge_association.components:
        associated.update(m.identifier for m in component.unique_matches())
    for leaf in tree.root.leaves():
        assert leaf.record_id in associated


def test_tree_cut_sets_exist_and_respect_limit(centrifuge_association):
    tree = build_attack_tree(centrifuge_association, "BPCS Platform",
                             max_paths=4, max_vectors_per_component=2)
    cut_sets = tree.cut_sets(limit=500)
    assert cut_sets
    assert len(cut_sets) <= 500
    assert all(isinstance(cs, frozenset) for cs in cut_sets)


def test_unknown_target_raises(centrifuge_association):
    with pytest.raises(KeyError):
        build_attack_tree(centrifuge_association, "missing")


def test_max_vectors_per_component_bounds_branching(centrifuge_association):
    narrow = build_attack_tree(centrifuge_association, "BPCS Platform",
                               max_vectors_per_component=1)
    wide = build_attack_tree(centrifuge_association, "BPCS Platform",
                             max_vectors_per_component=5)
    assert narrow.leaf_count() <= wide.leaf_count()

"""Failure-injection and degenerate-input tests.

These cover the unhappy paths a downstream user will hit: empty or degenerate
models and corpora, corrupted artifacts on disk, and physical/component
failures in the closed loop (cooling failure, stuck sensors) that the safety
layer -- not the security layer -- is supposed to catch.
"""

import json

import pytest

from repro.attacks.spoofing import SensorSpoofingAttack
from repro.corpus.store import CorpusStore
from repro.cps.hazards import HazardKind
from repro.cps.plant import CentrifugePlant
from repro.cps.scada import ScadaSimulation
from repro.graph.graphml import from_graphml_string
from repro.graph.model import Component, SystemGraph
from repro.search.chains import find_exploit_chains
from repro.search.engine import SearchEngine
from repro.search.filters import FilterPipeline, by_min_score


# -- degenerate corpora and models ------------------------------------------------


def test_engine_over_empty_corpus_returns_no_matches(centrifuge_model):
    engine = SearchEngine(CorpusStore())
    association = engine.associate(centrifuge_model)
    assert association.total == 0
    assert all(component.total == 0 for component in association.components)


def test_association_of_empty_model(engine):
    association = engine.associate(SystemGraph("empty"))
    assert association.total == 0
    assert association.attribute_table() == []
    assert association.component_ranking() == []


def test_component_without_attributes_matches_nothing(engine):
    graph = SystemGraph("bare")
    graph.add_component(Component("mystery", entry_point=True))
    association = engine.associate(graph)
    assert association.component("mystery").total == 0
    # Chains to a vector-less target do not exist.
    assert find_exploit_chains(association, "mystery") == []


def test_filtering_an_empty_association_is_a_noop(engine):
    association = engine.associate(SystemGraph("empty"))
    filtered = FilterPipeline([by_min_score(0.5)]).apply(association)
    assert filtered.total == 0


# -- corrupted artifacts --------------------------------------------------------------


def test_corpus_load_of_corrupted_file_raises(tmp_path):
    path = tmp_path / "corpus.json"
    path.write_text("{not valid json", encoding="utf-8")
    with pytest.raises(json.JSONDecodeError):
        CorpusStore.load(path)


def test_corpus_load_of_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        CorpusStore.load(tmp_path / "missing.json")


def test_graphml_parse_of_garbage_raises():
    with pytest.raises(Exception):
        from_graphml_string("this is not xml at all <<<")


def test_graphml_parse_of_wrong_xml_raises():
    with pytest.raises(ValueError):
        from_graphml_string("<?xml version='1.0'?><notgraphml></notgraphml>")


# -- physical and component failures ---------------------------------------------------


def test_cooling_failure_is_caught_by_the_sis():
    # A failed chiller is a plain reliability fault (no attacker): the SIS
    # must trip before the thermal-instability limit is crossed.
    simulation = ScadaSimulation(plant=CentrifugePlant().with_parameters(cooling_capacity=0.0))
    trace = simulation.run(duration_s=420.0, dt=0.5)
    assert simulation.sis.tripped
    assert "temperature" in simulation.sis.trip_reason
    assert trace.max_temperature() < 35.0


def test_stuck_low_temperature_sensor_defeats_both_layers():
    # A sensor stuck low (failure or tamper) blinds BPCS and SIS alike: the
    # process overheats without a trip -- the common-cause weakness the
    # redundant-sensor discussion in safety engineering is about.
    stuck = SensorSpoofingAttack(start_time_s=60.0, sensor="temperature", value=18.0)
    simulation = ScadaSimulation(interventions=[stuck])
    trace = simulation.run(duration_s=420.0, dt=0.5)
    assert not simulation.sis.tripped
    assert trace.hazards().occurred(HazardKind.THERMAL_RUNAWAY)


def test_stuck_tachometer_causes_overspeed_protection_to_engage():
    stuck = SensorSpoofingAttack(start_time_s=30.0, sensor="speed", value=0.0)
    simulation = ScadaSimulation(interventions=[stuck])
    trace = simulation.run(duration_s=300.0, dt=0.5)
    # The speed loop winds up against a reading of zero and drives the rotor
    # to its physical maximum; the SIS sees the same zero, so only the
    # hazard monitor (ground truth) notices.
    assert trace.max_speed() > 9_000.0
    report = trace.hazards()
    assert report.product_lost


def test_simulation_survives_zero_length_intervention_window():
    attack = SensorSpoofingAttack(start_time_s=50.0, duration_s=0.0, sensor="temperature", value=0.0)
    simulation = ScadaSimulation(interventions=[attack])
    trace = simulation.run(duration_s=120.0, dt=0.5)
    assert len(trace) == 240
    assert not simulation.temperature_sensor.spoofed

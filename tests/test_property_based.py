"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.cvss import CvssVector, severity_rating
from repro.cps.control import PidController
from repro.cps.hazards import HazardMonitor
from repro.cps.plant import CentrifugePlant, PlantState
from repro.graph.attributes import Attribute, AttributeKind, Fidelity
from repro.graph.model import Component, ComponentKind, Connection, SystemGraph
from repro.search.index import InvertedIndex
from repro.search.text import normalize_token, tokenize
from repro.search.tfidf import TfIdfModel

# -- strategies ---------------------------------------------------------------

cvss_vectors = st.builds(
    CvssVector,
    attack_vector=st.sampled_from("NALP"),
    attack_complexity=st.sampled_from("LH"),
    privileges_required=st.sampled_from("NLH"),
    user_interaction=st.sampled_from("NR"),
    scope=st.sampled_from("UC"),
    confidentiality=st.sampled_from("NLH"),
    integrity=st.sampled_from("NLH"),
    availability=st.sampled_from("NLH"),
)

names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" -_"),
    min_size=1,
    max_size=24,
).filter(lambda s: s.strip())

attributes = st.builds(
    Attribute,
    name=names,
    kind=st.sampled_from(AttributeKind),
    fidelity=st.sampled_from(Fidelity),
    description=st.text(max_size=60),
    version=st.text(alphabet="0123456789.", max_size=8),
)

free_text = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 -._",
    max_size=200,
)


# -- CVSS ----------------------------------------------------------------------


@given(cvss_vectors)
def test_cvss_score_is_bounded_and_rated(vector):
    score = vector.base_score()
    assert 0.0 <= score <= 10.0
    assert severity_rating(score) in {"None", "Low", "Medium", "High", "Critical"}
    # One decimal place by construction (roundup).
    assert math.isclose(score, round(score, 1), abs_tol=1e-9)


@given(cvss_vectors)
def test_cvss_round_trips_through_its_string_form(vector):
    assert CvssVector.parse(vector.to_string()) == vector


@given(cvss_vectors)
def test_cvss_zero_iff_no_impact(vector):
    no_impact = (
        vector.confidentiality == "N"
        and vector.integrity == "N"
        and vector.availability == "N"
    )
    assert (vector.base_score() == 0.0) == no_impact


# -- tokenizer -------------------------------------------------------------------


@given(free_text)
def test_tokenize_output_is_normalized_and_stable(text):
    tokens = tokenize(text)
    # normalize_token is deliberately single-pass (plural strip, then -ing
    # strip on the *original* token only), so idempotence is not guaranteed
    # (e.g. "000ings" -> "000ing", which another pass would reduce further).
    # What tokenize does guarantee: lowercase, non-empty, stop-word-free
    # output, produced deterministically.
    assert all(token and token == token.lower() for token in tokens)
    assert all(normalize_token(token) != "" for token in tokens)
    assert tokenize(" ".join(tokens), remove_stop_words=False) is not None
    assert tokenize(text) == tokens  # deterministic


@given(free_text)
def test_tokenize_is_case_insensitive(text):
    assert tokenize(text.upper()) == tokenize(text.lower())


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
def test_normalize_token_is_idempotent(token):
    once = normalize_token(token)
    assert normalize_token(once) == once


# -- inverted index / tf-idf ------------------------------------------------------


@given(st.lists(free_text, min_size=1, max_size=12, unique=True))
def test_index_candidates_contain_only_indexed_documents(texts):
    index = InvertedIndex()
    for i, text in enumerate(texts):
        index.add_document(f"d{i}", text)
    model = TfIdfModel(index)
    for text in texts:
        for doc_id, score in model.score(text):
            assert doc_id in index
            assert score > 0.0
            assert score <= 1.0 + 1e-9


@given(st.lists(free_text.filter(lambda t: tokenize(t)), min_size=1, max_size=10, unique=True))
def test_document_matches_itself_best_or_equal(texts):
    index = InvertedIndex()
    for i, text in enumerate(texts):
        index.add_document(f"d{i}", text)
    model = TfIdfModel(index).fit()
    for i, text in enumerate(texts):
        results = dict(model.score(text))
        if f"d{i}" in results:
            own = results[f"d{i}"]
            assert own >= max(results.values()) - 1e-9 or own > 0.5


# -- system graph ------------------------------------------------------------------


@given(st.lists(attributes, max_size=6))
def test_component_serialization_round_trip(attrs):
    graph = SystemGraph("prop")
    graph.add_component(Component("only", kind=ComponentKind.CONTROLLER, attributes=tuple(attrs)))
    clone = SystemGraph.from_dict(graph.to_dict())
    original = graph.component("only")
    rebuilt = clone.component("only")
    assert rebuilt.attribute_names() == original.attribute_names()
    assert [a.fidelity for a in rebuilt.attributes] == [a.fidelity for a in original.attributes]


@given(st.integers(min_value=2, max_value=8), st.randoms(use_true_random=False))
def test_exposure_distance_is_bounded_by_path_length(size, rng):
    graph = SystemGraph("chain")
    for i in range(size):
        graph.add_component(Component(f"n{i}", entry_point=(i == 0)))
    for i in range(size - 1):
        graph.connect(Connection(f"n{i}", f"n{i + 1}"))
    # Optionally add a shortcut edge.
    if size > 3 and rng.random() > 0.5:
        graph.connect(Connection("n0", f"n{size - 2}"))
    for i in range(size):
        distance = graph.exposure_distance(f"n{i}")
        assert distance is not None
        assert 0 <= distance <= i


# -- plant and control ---------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=10_000.0),
    st.floats(min_value=0.0, max_value=80.0),
)
def test_plant_state_stays_in_physical_envelope(drive, cooling, speed, temperature):
    plant = CentrifugePlant()
    plant.reset(PlantState(speed_rpm=speed, temperature_c=temperature))
    for _ in range(50):
        state = plant.step(0.5, drive, cooling)
        assert 0.0 <= state.speed_rpm <= plant.parameters.max_speed_rpm
        assert np.isfinite(state.temperature_c)
        assert plant.parameters.coolant_temperature_c - 5.0 <= state.temperature_c <= 200.0


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.0001, max_value=0.1),
    st.floats(min_value=0.0, max_value=0.05),
    st.floats(min_value=-1000.0, max_value=1000.0),
    st.floats(min_value=-1000.0, max_value=1000.0),
)
def test_pid_output_always_within_limits(kp, ki, setpoint, measurement):
    pid = PidController(kp=kp, ki=ki, output_min=0.0, output_max=1.0)
    for _ in range(20):
        output = pid.update(setpoint, measurement, 0.5)
        assert 0.0 <= output <= 1.0


# -- hazard monitor ---------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=-10.0, max_value=120.0), min_size=5, max_size=60),
    st.floats(min_value=0.0, max_value=10_500.0),
)
def test_hazard_events_lie_within_the_trace(temperatures, speed):
    temperatures = np.array(temperatures)
    length = len(temperatures)
    times = np.arange(length, dtype=float)
    speeds = np.full(length, speed)
    setpoints = np.full(length, 6000.0)
    report = HazardMonitor(settling_time_s=0.0).evaluate(times, temperatures, speeds, setpoints)
    for event in report.events:
        assert times[0] <= event.start_time_s <= event.end_time_s <= times[-1]
        assert event.duration_s >= 0.0
    # Re-evaluating the same trace is deterministic.
    again = HazardMonitor(settling_time_s=0.0).evaluate(times, temperatures, speeds, setpoints)
    assert len(again) == len(report)

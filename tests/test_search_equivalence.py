"""Golden equivalence tests for the cached/incremental/snapshot engine.

The performance work on :mod:`repro.search` (precomputed TF-IDF vectors,
attribute-level result caching, incremental re-association, index snapshots)
is only admissible if it is *exact*: every optimized path must return the
same ``SystemAssociation`` -- same identifiers, same scores, same ordering --
as a fresh engine with caching disabled.  These tests pin that contract
across all three scorers and both fidelity modes, on both case studies.
"""

from __future__ import annotations

import pytest

from helpers_equivalence import association_signature
from repro.casestudies.centrifuge import build_centrifuge_model, hardened_workstation_variant
from repro.casestudies.uav import build_uav_model
from repro.search.engine import SCORERS, SearchEngine

MODELS = {
    "centrifuge": build_centrifuge_model,
    "uav": build_uav_model,
}


@pytest.fixture(scope="module", params=SCORERS)
def scorer(request):
    return request.param


@pytest.fixture(scope="module", params=(True, False), ids=("fidelity", "no-fidelity"))
def fidelity_aware(request):
    return request.param


@pytest.fixture(scope="module")
def engine_pair(small_corpus, scorer, fidelity_aware):
    """A cached engine and its uncached reference, same configuration."""
    cached = SearchEngine(small_corpus, scorer=scorer, fidelity_aware=fidelity_aware)
    reference = SearchEngine(
        small_corpus, scorer=scorer, fidelity_aware=fidelity_aware, enable_cache=False
    )
    return cached, reference


@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_cached_engine_equals_uncached_reference(engine_pair, model_name):
    cached, reference = engine_pair
    model = MODELS[model_name]()
    cold = cached.associate(model)
    warm = cached.associate(model)  # fully served from the caches
    expected = association_signature(reference.associate(model))
    assert association_signature(cold) == expected
    assert association_signature(warm) == expected


@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_incremental_reassociate_equals_full_associate(engine_pair, model_name):
    cached, reference = engine_pair
    baseline = MODELS[model_name]()
    variant = hardened_workstation_variant(baseline) if model_name == "centrifuge" else (
        baseline.copy("uav-variant")
    )
    if model_name == "uav":
        # Drop one component so the incremental path sees a structural edit.
        variant.remove_component(variant.component_names()[-1])
    baseline_association = cached.associate(baseline)
    incremental = cached.reassociate(baseline_association, variant)
    full = reference.associate(variant)
    assert association_signature(incremental) == association_signature(full)
    assert incremental.system is variant
    assert incremental.scorer == cached.scorer


def test_snapshot_loaded_engine_equals_built_engine(tmp_path, engine_pair, small_corpus,
                                                    scorer, fidelity_aware):
    cached, reference = engine_pair
    path = cached.save_index_snapshot(tmp_path / "index.json")
    loaded = SearchEngine.from_index_snapshot(
        small_corpus, path, scorer=scorer, fidelity_aware=fidelity_aware
    )
    model = build_centrifuge_model()
    assert association_signature(loaded.associate(model)) == association_signature(
        reference.associate(model)
    )


def test_snapshot_rejects_mismatched_corpus(tmp_path, small_corpus, seed_only_corpus):
    path = SearchEngine(small_corpus).save_index_snapshot(tmp_path / "index.json")
    with pytest.raises(ValueError, match="does not match the corpus"):
        SearchEngine.from_index_snapshot(seed_only_corpus, path)


def test_snapshot_rejects_unknown_version(tmp_path, small_corpus):
    path = tmp_path / "index.json"
    path.write_text('{"version": 999}', encoding="utf-8")
    with pytest.raises(ValueError, match="snapshot version"):
        SearchEngine.from_index_snapshot(small_corpus, path)


def test_snapshot_rejects_non_object_payload(tmp_path, small_corpus):
    path = tmp_path / "index.json"
    path.write_text("[1, 2, 3]", encoding="utf-8")
    with pytest.raises(ValueError, match="JSON object"):
        SearchEngine.from_index_snapshot(small_corpus, path)


def test_snapshot_rejects_missing_record_class(tmp_path, small_corpus):
    import json

    engine = SearchEngine(small_corpus)
    payload = engine.index_snapshot()
    del payload["weakness"]
    path = tmp_path / "index.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(ValueError, match="missing the 'weakness' index"):
        SearchEngine.from_index_snapshot(small_corpus, path)


def test_malformed_posting_payloads_raise_value_error(small_corpus):
    from repro.search.index import InvertedIndex

    with pytest.raises(ValueError, match="outside the document table"):
        InvertedIndex.from_dict(
            {"documents": [["d1", 2]], "postings": {"tok": [[0, 5], [1, 1]]}}
        )
    with pytest.raises(ValueError, match="differ in length"):
        InvertedIndex.from_dict(
            {"documents": [["d1", 2]], "postings": {"tok": [[0], [1, 2]]}}
        )
    with pytest.raises(ValueError):
        InvertedIndex.from_dict({"documents": "not-a-list-of-pairs"})
    with pytest.raises(ValueError, match="malformed index snapshot"):
        InvertedIndex.from_dict({"documents": [["d1", 2]], "postings": {"tok": 3}})
    # Tokenization never yields tf <= 0; a crafted zero would turn into a
    # -inf TF-IDF weight, so it is rejected at the boundary.
    with pytest.raises(ValueError, match="non-positive term frequency"):
        InvertedIndex.from_dict(
            {"documents": [["d1", 2]], "postings": {"tok": [[0], [0]]}}
        )


def test_reassociate_rescores_in_full_on_scorer_drift(small_corpus):
    model = build_centrifuge_model()
    engine = SearchEngine(small_corpus, scorer="coverage")
    baseline = engine.associate(model)
    engine.scorer = "jaccard"
    drifted = engine.reassociate(baseline, model.copy())
    fresh = SearchEngine(
        small_corpus, scorer="jaccard", enable_cache=False
    ).associate(model)
    assert drifted.scorer == "jaccard"
    assert association_signature(drifted) == association_signature(fresh)


def test_reassociate_rescores_in_full_on_threshold_drift(small_corpus):
    model = build_centrifuge_model()
    engine = SearchEngine(small_corpus)
    baseline = engine.associate(model)
    engine.pattern_threshold *= 2
    drifted = engine.reassociate(baseline, model.copy())
    fresh = SearchEngine(
        small_corpus, pattern_threshold=engine.pattern_threshold, enable_cache=False
    ).associate(model)
    assert association_signature(drifted) == association_signature(fresh)


def test_reassociate_without_recorded_config_rescores_in_full(small_corpus):
    from repro.search.engine import SystemAssociation

    model = build_centrifuge_model()
    engine = SearchEngine(small_corpus)
    # A hand-built baseline (engine_config=None) must never be trusted.
    bare = SystemAssociation(system=model, components=(), scorer=engine.scorer)
    rebuilt = engine.reassociate(bare, model.copy())
    fresh = SearchEngine(small_corpus, enable_cache=False).associate(model)
    assert association_signature(rebuilt) == association_signature(fresh)


def test_snapshot_rejects_same_ids_different_texts(tmp_path, small_corpus):
    from repro.corpus.store import CorpusStore

    path = SearchEngine(small_corpus).save_index_snapshot(tmp_path / "index.json")
    payload = small_corpus.to_dict()
    payload["weaknesses"][0]["description"] += " freshly edited description"
    edited_corpus = CorpusStore.from_dict(payload)
    with pytest.raises(ValueError, match="does not match the corpus contents"):
        SearchEngine.from_index_snapshot(edited_corpus, path)

"""Metrics core: registry semantics and exposition-format discipline.

Two kinds of pinning:

* registry behavior -- counters only go up, labelled children are shared,
  histograms bucket correctly, ``reset()`` zeroes data but keeps families
  (the ``post_fork_reset`` contract),
* the rendered text exposition is *valid* -- every render in this module
  round-trips through the strict parser in :mod:`repro.obs.textparse`, the
  same one ``cpsec stats`` and the CI smoke jobs use, so a formatting
  regression fails here before it fails a real scraper.
"""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    escape_label_value,
    format_value,
    render_snapshots,
)
from repro.obs.textparse import (
    ExpositionParseError,
    parse_exposition,
    sum_samples,
)


# -- registry semantics -------------------------------------------------------


def test_counter_accumulates_and_rejects_decrease():
    registry = MetricsRegistry()
    requests = registry.counter("t_requests_total", "Requests.", ("op",))
    requests.labels("associate").inc()
    requests.labels("associate").inc(2)
    requests.labels("table1").inc()
    assert requests.labels("associate").value == 3
    assert requests.labels("table1").value == 1
    with pytest.raises(ValueError):
        requests.labels("associate").inc(-1)


def test_labelled_child_is_shared_and_keyword_labels_work():
    registry = MetricsRegistry()
    family = registry.counter("t_total", "T.", ("a", "b"))
    assert family.labels("x", "y") is family.labels("x", "y")
    assert family.labels(a="x", b="y") is family.labels("x", "y")
    with pytest.raises(ValueError):
        family.labels("x")  # wrong arity
    with pytest.raises(ValueError):
        family.labels(a="x")  # missing label


def test_unlabelled_family_proxies_to_single_child():
    registry = MetricsRegistry()
    registry.counter("t_one_total", "T.").inc(5)
    registry.gauge("t_g", "G.").set(2.5)
    families = parse_exposition(registry.render())
    assert sum_samples(families, "t_one_total") == 5
    assert sum_samples(families, "t_g") == 2.5


def test_histogram_buckets_value_into_first_covering_bound():
    registry = MetricsRegistry()
    family = registry.histogram("t_seconds", "H.", buckets=(0.1, 1.0, 10.0))
    child = family.labels()
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        child.observe(value)
    assert child.counts == [1, 2, 1, 1]  # last slot is +Inf overflow
    assert child.count == 5
    assert child.sum == pytest.approx(56.05)


def test_reregistration_is_idempotent_but_conflicts_raise():
    registry = MetricsRegistry()
    first = registry.counter("t_total", "T.", ("op",))
    assert registry.counter("t_total", "T.", ("op",)) is first
    with pytest.raises(ValueError):
        registry.gauge("t_total", "T.", ("op",))
    with pytest.raises(ValueError):
        registry.counter("t_total", "T.", ("other",))
    with pytest.raises(ValueError):
        registry.counter("bad name", "T.")
    with pytest.raises(ValueError):
        registry.counter("t_ok_total", "T.", ("__reserved",))


def test_reset_zeroes_data_but_keeps_families():
    """The post_fork_reset contract: a worker starts from zero, not from
    the parent's warm-up traffic -- and keeps the registered families."""
    registry = MetricsRegistry()
    counter = registry.counter("t_total", "T.", ("op",))
    histogram = registry.histogram("t_seconds", "H.")
    counter.labels("a").inc(7)
    histogram.observe(0.2)
    registry.reset()
    assert counter.labels("a").value == 0
    assert histogram.labels().count == 0
    families = parse_exposition(registry.render())
    assert "t_total" in families and "t_seconds" in families
    assert sum_samples(families, "t_total") == 0


# -- exposition rendering -----------------------------------------------------


def test_render_is_valid_exposition_with_worker_label():
    registry = MetricsRegistry()
    registry.counter("t_requests_total", "Requests handled.", ("op",)).labels(
        "associate"
    ).inc(3)
    registry.gauge("t_depth", "Queue depth.").set(4)
    registry.histogram("t_seconds", "Latency.").observe(0.003)
    text = registry.render(worker="7")
    assert text.startswith("# HELP ")
    families = parse_exposition(text)
    sample = families["t_requests_total"].samples[0]
    assert sample.labels == {"op": "associate", "worker": "7"}
    assert sample.value == 3
    assert families["t_seconds"].type == "histogram"


def test_histogram_renders_cumulative_buckets_sum_and_count():
    registry = MetricsRegistry()
    registry.histogram("t_seconds", "H.", buckets=(0.1, 1.0)).observe(0.05)
    registry.histogram("t_seconds", "H.", buckets=(0.1, 1.0)).observe(0.5)
    registry.histogram("t_seconds", "H.", buckets=(0.1, 1.0)).observe(99.0)
    text = registry.render()
    families = parse_exposition(text)  # enforces cumulative + +Inf == _count
    by_le = {
        sample.labels["le"]: sample.value
        for sample in families["t_seconds"].samples
        if sample.name == "t_seconds_bucket"
    }
    assert by_le == {"0.1": 1, "1": 2, "+Inf": 3}
    assert sum_samples(families, "t_seconds_count") == 0  # filtered: histogram family
    count = [
        sample.value
        for sample in families["t_seconds"].samples
        if sample.name == "t_seconds_count"
    ]
    assert count == [3]


def test_label_values_are_escaped_and_round_trip():
    hostile = 'a"b\\c\nd'
    assert escape_label_value(hostile) == 'a\\"b\\\\c\\nd'
    registry = MetricsRegistry()
    registry.counter("t_total", "T.", ("name",)).labels(hostile).inc()
    families = parse_exposition(registry.render())
    sample = families["t_total"].samples[0]
    assert sample.labels["name"] == hostile


def test_format_value_integers_bare_and_specials():
    assert format_value(3.0) == "3"
    assert format_value(0.25) == "0.25"
    assert format_value(math.inf) == "+Inf"
    assert format_value(-math.inf) == "-Inf"
    assert format_value(math.nan) == "NaN"


# -- multi-worker merge -------------------------------------------------------


def _worker_snapshot(worker: str, requests: int, observed: float) -> dict:
    registry = MetricsRegistry()
    registry.counter("t_requests_total", "Requests.", ("op",)).labels(
        "associate"
    ).inc(requests)
    registry.histogram("t_seconds", "Latency.", buckets=(0.1, 1.0)).observe(observed)
    return registry.snapshot(worker)


def test_render_snapshots_merges_workers_under_one_header():
    text = render_snapshots(
        [_worker_snapshot("0", 3, 0.05), _worker_snapshot("1", 5, 0.5)]
    )
    assert text.count("# TYPE t_requests_total counter") == 1
    families = parse_exposition(text)
    workers = {
        sample.labels["worker"]: sample.value
        for sample in families["t_requests_total"].samples
    }
    assert workers == {"0": 3, "1": 5}
    assert sum_samples(families, "t_requests_total") == 8
    assert sum_samples(families, "t_requests_total", worker="1") == 5
    # Histogram series merge per worker too, each internally consistent.
    counts = [
        sample.value
        for sample in families["t_seconds"].samples
        if sample.name == "t_seconds_count"
    ]
    assert counts == [1, 1]


def test_snapshot_is_json_shaped_and_deterministic():
    snapshot = _worker_snapshot("2", 1, 0.2)
    assert snapshot["worker"] == "2"
    names = [family["name"] for family in snapshot["families"]]
    assert names == ["t_requests_total", "t_seconds"]
    histogram = snapshot["families"][1]
    assert histogram["buckets"] == [0.1, 1.0]
    assert histogram["series"][0]["counts"] == [0, 1, 0]


# -- parser discipline --------------------------------------------------------


def test_parser_rejects_samples_before_type():
    with pytest.raises(ExpositionParseError):
        parse_exposition('t_total{worker="0"} 1\n')


def test_parser_rejects_non_cumulative_histogram():
    bad = (
        "# TYPE t_seconds histogram\n"
        't_seconds_bucket{le="0.1"} 5\n'
        't_seconds_bucket{le="1"} 3\n'
        't_seconds_bucket{le="+Inf"} 5\n'
        "t_seconds_sum 1\n"
        "t_seconds_count 5\n"
    )
    with pytest.raises(ExpositionParseError):
        parse_exposition(bad)


def test_parser_rejects_missing_inf_bucket():
    bad = (
        "# TYPE t_seconds histogram\n"
        't_seconds_bucket{le="0.1"} 1\n'
        "t_seconds_sum 0.05\n"
        "t_seconds_count 1\n"
    )
    with pytest.raises(ExpositionParseError):
        parse_exposition(bad)


def test_parser_rejects_negative_counter():
    with pytest.raises(ExpositionParseError):
        parse_exposition("# TYPE t_total counter\nt_total -1\n")

"""LRU bound on the engine result caches: eviction policy and exactness."""

from __future__ import annotations

import pytest

from helpers_equivalence import association_signature
from repro.casestudies.centrifuge import build_centrifuge_model
from repro.search.cache import LruCache
from repro.search.engine import SearchEngine


# -- the cache itself ---------------------------------------------------------


def test_lru_cache_evicts_least_recently_used():
    cache = LruCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a"; "b" becomes the LRU entry
    assert cache.put("c", 3) == 1
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1
    assert len(cache) == 2


def test_lru_cache_unbounded_never_evicts():
    cache = LruCache(max_entries=None)
    for number in range(500):
        assert cache.put(number, number) == 0
    assert len(cache) == 500
    assert cache.evictions == 0


def test_lru_cache_rejects_non_positive_bound():
    with pytest.raises(ValueError):
        LruCache(max_entries=0)


def test_lru_cache_clear_keeps_eviction_counter():
    cache = LruCache(max_entries=1)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.clear()
    assert len(cache) == 0
    assert cache.evictions == 1


# -- the engine under a tight bound -------------------------------------------


def test_bounded_engine_returns_exact_results(small_corpus):
    model = build_centrifuge_model()
    tight = SearchEngine(small_corpus, max_cache_entries=2)
    reference = SearchEngine(small_corpus, enable_cache=False)
    expected = association_signature(reference.associate(model))
    assert association_signature(tight.associate(model)) == expected
    # Evictions happened (the model has far more than 2 distinct attributes)
    # yet a re-run -- recomputing the evicted entries -- stays identical.
    assert tight.stats.text_cache_evictions > 0
    assert association_signature(tight.associate(model)) == expected


def test_eviction_counters_and_sizes_are_reported(small_corpus):
    engine = SearchEngine(small_corpus, max_cache_entries=2)
    engine.associate(build_centrifuge_model())
    info = engine.cache_info()
    assert info["max_entries"] == 2
    assert info["attribute_entries"] <= 2
    assert info["text_entries"] <= 2
    assert info["vulnerability_entries"] <= 2
    snapshot = engine.stats.snapshot()
    assert snapshot["text_cache_evictions"] == info["text_evictions"]
    assert snapshot["attribute_cache_evictions"] == info["attribute_evictions"]
    assert snapshot["vulnerability_cache_evictions"] == info["vulnerability_evictions"]


def test_unbounded_engine_reports_no_evictions(small_corpus):
    engine = SearchEngine(small_corpus, max_cache_entries=None)
    engine.associate(build_centrifuge_model())
    assert engine.cache_info()["max_entries"] is None
    assert engine.stats.text_cache_evictions == 0
    assert engine.stats.attribute_cache_evictions == 0


def test_default_bound_is_generous(small_corpus):
    engine = SearchEngine(small_corpus)
    assert engine.cache_info()["max_entries"] == 65536


def test_fast_match_construction_equals_public_constructor(small_corpus):
    """Engine-built Match objects equal Match(...) built the public way."""
    from repro.search.engine import Match

    engine = SearchEngine(small_corpus)
    model = build_centrifuge_model()
    association = engine.associate(model)
    match = association.components[0].unique_matches()[0]
    rebuilt = Match(
        identifier=match.identifier,
        kind=match.kind,
        score=match.score,
        name=match.name,
        severity=match.severity,
        cvss_score=match.cvss_score,
        network_exploitable=match.network_exploitable,
    )
    assert match == rebuilt
    assert hash(match) == hash(rebuilt)
    assert repr(match) == repr(rebuilt)

"""Tests for architecture refinement and abstraction."""

import pytest

from repro.casestudies.centrifuge import build_centrifuge_model, centrifuge_refinement_plan
from repro.graph.attributes import Attribute, Fidelity
from repro.graph.refinement import (
    RefinementPlan,
    RefinementStep,
    abstract_component,
    abstract_model,
    fidelity_profile,
    refine_component,
    swap_attribute,
)


def test_refinement_step_requires_attributes():
    with pytest.raises(ValueError):
        RefinementStep("X", ())


def test_refine_component_adds_attributes_without_mutating_original():
    model = build_centrifuge_model(Fidelity.LOGICAL)
    refined = refine_component(
        model, "Programming WS",
        Attribute("Windows 7", fidelity=Fidelity.IMPLEMENTATION),
    )
    assert "Windows 7" in refined.component("Programming WS").attribute_names()
    assert "Windows 7" not in model.component("Programming WS").attribute_names()


def test_abstract_component_drops_specific_attributes():
    model = build_centrifuge_model()
    abstracted = abstract_component(model, "Programming WS", Fidelity.LOGICAL)
    names = abstracted.component("Programming WS").attribute_names()
    assert "Windows 7" not in names
    assert "engineering workstation" in names


def test_abstract_model_caps_every_component():
    model = build_centrifuge_model()
    conceptual = abstract_model(model, Fidelity.CONCEPTUAL)
    for component in conceptual.components:
        assert all(a.fidelity <= Fidelity.CONCEPTUAL for a in component.attributes)
    # The topology is unchanged.
    assert len(conceptual.connections) == len(model.connections)


def test_fidelity_profile_counts_every_level():
    model = build_centrifuge_model()
    profile = fidelity_profile(model)
    assert profile[Fidelity.IMPLEMENTATION] >= 6
    assert profile[Fidelity.CONCEPTUAL] >= 5
    assert sum(profile.values()) == len(model.all_attributes())


def test_refinement_plan_applies_all_steps():
    base = build_centrifuge_model(Fidelity.LOGICAL)
    plan = centrifuge_refinement_plan()
    refined = plan.apply(base)
    names = refined.component("SIS Platform").attribute_names()
    assert "NI cRIO 9063" in names
    assert "NI RT Linux OS" in names
    assert set(plan.touched_components()) == {
        "Control Firewall", "Programming WS", "SIS Platform", "BPCS Platform",
    }


def test_refinement_plan_reaches_implementation_attribute_set():
    base = build_centrifuge_model(Fidelity.LOGICAL)
    refined = centrifuge_refinement_plan().apply(base)
    full = build_centrifuge_model()
    for component in full.components:
        assert set(component.attribute_names()) == set(
            refined.component(component.name).attribute_names()
        )


def test_plan_add_is_chainable():
    plan = RefinementPlan("p")
    returned = plan.add(RefinementStep("X", (Attribute("a"),)))
    assert returned is plan
    assert len(plan.steps) == 1


def test_swap_attribute_replaces_in_place():
    model = build_centrifuge_model()
    variant = swap_attribute(
        model, "Programming WS", "Windows 7",
        Attribute("hardened thin client", fidelity=Fidelity.IMPLEMENTATION),
    )
    names = variant.component("Programming WS").attribute_names()
    assert "Windows 7" not in names
    assert "hardened thin client" in names
    # Position is preserved (replacement, not append).
    original_names = model.component("Programming WS").attribute_names()
    assert names.index("hardened thin client") == original_names.index("Windows 7")


def test_swap_attribute_unknown_attribute_raises():
    model = build_centrifuge_model()
    with pytest.raises(KeyError):
        swap_attribute(model, "Programming WS", "nonexistent", Attribute("x"))

"""Tests for the attribute -> attack-vector association engine."""

import pytest

from repro.corpus.schema import RecordKind
from repro.corpus.seed import seed_corpus
from repro.graph.attributes import Attribute, AttributeKind, Fidelity
from repro.graph.model import Component
from repro.search.engine import Match, SearchEngine

CISCO = Attribute(
    "Cisco ASA", kind=AttributeKind.HARDWARE, fidelity=Fidelity.IMPLEMENTATION,
    description="Cisco Adaptive Security Appliance firewall",
)
WINDOWS = Attribute(
    "Windows 7", kind=AttributeKind.OPERATING_SYSTEM, fidelity=Fidelity.IMPLEMENTATION,
    description="Microsoft Windows 7 operating system", version="SP1",
)
FUNCTION_ONLY = Attribute(
    "redundant safety monitor", kind=AttributeKind.FUNCTION, fidelity=Fidelity.CONCEPTUAL,
    description="safety instrumented system that trips the centrifuge",
)


def test_unknown_scorer_rejected(small_corpus):
    with pytest.raises(ValueError):
        SearchEngine(small_corpus, scorer="bm25")


def test_match_score_must_be_non_negative():
    with pytest.raises(ValueError):
        Match("CWE-78", RecordKind.WEAKNESS, -0.1)


def test_specific_attribute_matches_platform_vulnerabilities(engine):
    matches = engine.match_attribute(CISCO)
    cve_platforms = {m.identifier for m in matches.vulnerabilities}
    assert "CVE-2018-0101" in cve_platforms
    assert matches.counts()[RecordKind.VULNERABILITY] > 10


def test_conceptual_attribute_skips_vulnerabilities_in_fidelity_aware_mode(engine):
    matches = engine.match_attribute(FUNCTION_ONLY)
    assert matches.vulnerabilities == ()
    # but it still relates to weaknesses / patterns (the paper's abstraction claim)
    assert matches.counts()[RecordKind.WEAKNESS] + matches.counts()[RecordKind.ATTACK_PATTERN] > 0


def test_fidelity_aware_can_be_disabled(small_corpus):
    engine = SearchEngine(small_corpus, fidelity_aware=False)
    matches = engine.match_attribute(FUNCTION_ONLY)
    # Vulnerability matching now runs for conceptual attributes too; the
    # safety-function text matches at least the Triton-style seed CVE.
    assert matches.counts()[RecordKind.VULNERABILITY] >= 0
    assert isinstance(matches.vulnerabilities, tuple)


def test_windows_attribute_matches_os_weaknesses(engine):
    matches = engine.match_attribute(WINDOWS)
    assert matches.counts()[RecordKind.WEAKNESS] > 0
    assert matches.counts()[RecordKind.VULNERABILITY] > 50


def test_matches_are_sorted_by_score(engine):
    matches = engine.match_attribute(WINDOWS)
    scores = [m.score for m in matches.vulnerabilities]
    assert scores == sorted(scores, reverse=True)


def test_vulnerability_matches_carry_cvss(engine):
    matches = engine.match_attribute(CISCO)
    assert all(m.cvss_score is not None for m in matches.vulnerabilities)
    assert all(m.network_exploitable is not None for m in matches.vulnerabilities)
    assert all(m.cvss_score >= 0 for m in matches.vulnerabilities)


def test_pattern_and_weakness_matches_have_no_cvss(engine):
    matches = engine.match_attribute(WINDOWS)
    for match in matches.attack_patterns + matches.weaknesses:
        assert match.cvss_score is None


def test_max_per_class_caps_results(small_corpus):
    engine = SearchEngine(small_corpus, max_per_class=5)
    matches = engine.match_attribute(WINDOWS)
    assert len(matches.vulnerabilities) <= 5
    assert len(matches.weaknesses) <= 5
    assert len(matches.attack_patterns) <= 5


def test_component_association_deduplicates(engine):
    component = Component(
        "WS", attributes=(WINDOWS, Attribute("Microsoft Windows 7", fidelity=Fidelity.IMPLEMENTATION)),
    )
    association = engine.associate_component(component)
    identifiers = [m.identifier for m in association.unique_matches()]
    assert len(identifiers) == len(set(identifiers))
    assert association.total == len(identifiers)
    # Per-attribute matches overlap, so the sum over attributes exceeds the dedup count.
    per_attribute_total = sum(am.total for am in association.attribute_matches)
    assert per_attribute_total >= association.total


def test_system_association_structure(centrifuge_association, centrifuge_model):
    assert len(centrifuge_association.components) == len(centrifuge_model)
    assert centrifuge_association.component("BPCS Platform").total > 0
    with pytest.raises(KeyError):
        centrifuge_association.component("missing")


def test_attribute_table_contains_table1_rows(centrifuge_association):
    rows = {row["attribute"]: row for row in centrifuge_association.attribute_table()}
    for name in ("Cisco ASA", "NI RT Linux OS", "Windows 7", "Labview",
                 "NI cRIO 9063", "NI cRIO 9064"):
        assert name in rows
    assert rows["NI RT Linux OS"]["vulnerabilities"] > rows["Cisco ASA"]["vulnerabilities"]
    assert rows["Windows 7"]["vulnerabilities"] > rows["Labview"]["vulnerabilities"]


def test_total_counts_do_not_double_count(centrifuge_association):
    totals = centrifuge_association.total_counts()
    assert centrifuge_association.total == sum(totals.values())
    # NI RT Linux appears on both SIS and BPCS but its vulnerabilities are
    # counted once system-wide.
    linux_row = {
        row["attribute"]: row for row in centrifuge_association.attribute_table()
    }["NI RT Linux OS"]
    assert totals[RecordKind.VULNERABILITY] < 2 * linux_row["vulnerabilities"] + 1000


def test_component_ranking_is_sorted(centrifuge_association):
    ranking = centrifuge_association.component_ranking()
    counts = [count for _, count in ranking]
    assert counts == sorted(counts, reverse=True)
    assert ranking[0][1] >= ranking[-1][1]


def test_plant_component_has_few_or_no_matches(centrifuge_association):
    # The centrifuge itself is a physical component with conceptual
    # attributes; it should attract far fewer records than the controllers.
    plant = centrifuge_association.component("Centrifuge")
    bpcs = centrifuge_association.component("BPCS Platform")
    assert plant.total < bpcs.total


def test_seed_only_engine_finds_cwe78_for_controller_description():
    engine = SearchEngine(seed_corpus())
    attribute = Attribute(
        "control platform input handling",
        fidelity=Fidelity.LOGICAL,
        description=(
            "supervisory controller constructs operating system command strings "
            "from externally influenced input received over the network"
        ),
    )
    matches = engine.match_attribute(attribute)
    weakness_ids = {m.identifier for m in matches.weaknesses}
    assert "CWE-78" in weakness_ids


def test_cosine_scorer_mode(small_corpus):
    engine = SearchEngine(small_corpus, scorer="cosine",
                          pattern_threshold=0.05, weakness_threshold=0.05,
                          vulnerability_text_threshold=0.05)
    matches = engine.match_attribute(CISCO)
    assert matches.counts()[RecordKind.VULNERABILITY] > 0


def test_jaccard_scorer_mode(seed_only_corpus):
    engine = SearchEngine(seed_only_corpus, scorer="jaccard",
                          pattern_threshold=0.02, weakness_threshold=0.02,
                          vulnerability_text_threshold=0.02)
    matches = engine.match_attribute(WINDOWS)
    assert matches.total > 0


def test_warm_association_is_served_from_cache(small_corpus):
    engine = SearchEngine(small_corpus)
    first = engine.match_attribute(WINDOWS)
    hits_before = engine.stats.attribute_cache_hits
    second = engine.match_attribute(WINDOWS)
    assert second is first  # cached AttributeMatches object, not a recompute
    assert engine.stats.attribute_cache_hits == hits_before + 1
    assert engine.cache_info()["attribute_entries"] >= 1


def test_cache_can_be_disabled(small_corpus):
    engine = SearchEngine(small_corpus, enable_cache=False)
    first = engine.match_attribute(WINDOWS)
    second = engine.match_attribute(WINDOWS)
    assert first is not second
    assert first == second
    info = engine.cache_info()
    assert info["attribute_entries"] == 0
    assert info["text_entries"] == 0
    assert info["vulnerability_entries"] == 0
    assert engine.stats.attribute_cache_hits == 0


def test_clear_caches_empties_every_table(small_corpus):
    engine = SearchEngine(small_corpus)
    engine.match_attribute(WINDOWS)
    entry_keys = ("attribute_entries", "text_entries", "vulnerability_entries")
    assert any(engine.cache_info()[key] for key in entry_keys)
    engine.clear_caches()
    assert not any(engine.cache_info()[key] for key in entry_keys)


def test_stats_reset(small_corpus):
    engine = SearchEngine(small_corpus)
    engine.match_attribute(WINDOWS)
    assert engine.stats.attribute_cache_misses > 0
    engine.stats.reset()
    assert engine.stats.snapshot() == {
        "attribute_cache_hits": 0, "attribute_cache_misses": 0,
        "text_cache_hits": 0, "text_cache_misses": 0,
        "components_scored": 0, "components_reused": 0,
        "attribute_cache_evictions": 0, "text_cache_evictions": 0,
        "vulnerability_cache_evictions": 0,
        "shards_skipped": 0, "candidates_pruned": 0,
    }

"""Tests for report rendering."""

from repro.analysis.metrics import compute_posture
from repro.analysis.report import (
    render_posture_report,
    render_table,
    render_table1,
    render_whatif,
)
from repro.analysis.whatif import WhatIfStudy
from repro.casestudies.centrifuge import build_centrifuge_model, hardened_workstation_variant


def test_render_table_alignment():
    text = render_table(("A", "Bee"), [("1", "2"), ("333", "4")])
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)
    assert "333" in text


def test_render_table_handles_non_string_cells():
    text = render_table(("n",), [(5,), (10,)])
    assert "10" in text


def test_table1_contains_paper_rows_in_order(centrifuge_association):
    text = render_table1(centrifuge_association)
    lines = text.splitlines()
    assert "Attribute" in lines[0]
    body = "\n".join(lines[2:])
    positions = [body.index(name) for name in (
        "Cisco ASA", "NI RT Linux OS", "Windows 7", "Labview", "NI cRIO 9063", "NI cRIO 9064",
    )]
    assert positions == sorted(positions)


def test_table1_with_custom_attribute_subset(centrifuge_association):
    text = render_table1(centrifuge_association, attributes=("Windows 7",))
    assert "Windows 7" in text
    assert "Cisco ASA" not in text


def test_table1_skips_unknown_attributes(centrifuge_association):
    text = render_table1(centrifuge_association, attributes=("Windows 7", "Nonexistent"))
    assert "Nonexistent" not in text


def test_posture_report_mentions_all_components(centrifuge_association, centrifuge_model):
    text = render_posture_report(centrifuge_association)
    for name in centrifuge_model.component_names():
        assert name in text
    assert "posture index" in text.lower()
    assert "severity profile" in text.lower()


def test_posture_report_accepts_precomputed_metrics(centrifuge_association):
    metrics = compute_posture(centrifuge_association)
    text = render_posture_report(centrifuge_association, metrics)
    assert f"{metrics.system_posture_index:.1f}" in text


def test_whatif_report_states_verdict(engine):
    baseline = build_centrifuge_model()
    variant = hardened_workstation_variant(baseline)
    comparison = WhatIfStudy(engine).compare(baseline, variant)
    text = render_whatif(comparison)
    assert "better posture" in text
    assert "Programming WS" in text
    assert str(comparison.baseline_total) in text

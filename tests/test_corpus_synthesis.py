"""Tests for the synthetic corpus generator."""

import pytest

from repro.corpus.schema import RecordKind
from repro.corpus.synthesis import (
    BACKGROUND_PROFILES,
    TABLE1_PROFILES,
    PlatformProfile,
    SyntheticCorpusBuilder,
    build_corpus,
)


def test_scale_must_be_positive():
    with pytest.raises(ValueError):
        SyntheticCorpusBuilder(scale=0.0)


def test_generation_is_deterministic():
    first = SyntheticCorpusBuilder(scale=0.02, seed=7).build()
    second = SyntheticCorpusBuilder(scale=0.02, seed=7).build()
    assert first.counts() == second.counts()
    first_ids = sorted(v.identifier for v in first.vulnerabilities)[:50]
    second_ids = sorted(v.identifier for v in second.vulnerabilities)[:50]
    assert first_ids == second_ids
    first_texts = {v.identifier: v.description for v in first.vulnerabilities}
    for vulnerability in list(second.vulnerabilities)[:50]:
        assert first_texts[vulnerability.identifier] == vulnerability.description


def test_different_seeds_differ():
    first = SyntheticCorpusBuilder(scale=0.02, seed=1).build(include_seed=False)
    second = SyntheticCorpusBuilder(scale=0.02, seed=2).build(include_seed=False)
    first_texts = [v.description for v in first.vulnerabilities][:100]
    second_texts = [v.description for v in second.vulnerabilities][:100]
    assert first_texts != second_texts


def test_platform_populations_follow_table1_ratios():
    builder = SyntheticCorpusBuilder(scale=0.05, include_background=False)
    store = builder.build(include_seed=False)
    by_platform = {
        profile.key: len(store.vulnerabilities_for_platform(profile.key))
        for profile in TABLE1_PROFILES
    }
    # The ordering of Table 1 must hold: NI RT Linux > Windows 7 > Cisco ASA
    # >> LabVIEW ~ cRIO.
    assert by_platform["ni linux real-time"] > by_platform["microsoft windows 7"]
    assert by_platform["microsoft windows 7"] > by_platform["cisco asa"]
    assert by_platform["cisco asa"] > 20 * by_platform["ni labview"]
    assert by_platform["ni crio-9063"] <= 3
    # And the scaled sizes are close to scale * paper count.
    for profile in TABLE1_PROFILES:
        expected = max(1, round(profile.vulnerability_count * 0.05))
        assert by_platform[profile.key] == expected


def test_full_scale_counts_match_profiles_exactly():
    builder = SyntheticCorpusBuilder(scale=1.0, include_background=False)
    vulnerabilities = builder.build_vulnerabilities()
    by_platform = {}
    for vulnerability in vulnerabilities:
        for platform in vulnerability.affected_platforms:
            by_platform[platform] = by_platform.get(platform, 0) + 1
    for profile in TABLE1_PROFILES:
        assert by_platform[profile.key] == profile.vulnerability_count


def test_identifiers_are_unique():
    store = SyntheticCorpusBuilder(scale=0.05).build()
    identifiers = [record.identifier for record in store.all_records()]
    assert len(identifiers) == len(set(identifiers))


def test_weakness_and_pattern_populations_exist():
    store = SyntheticCorpusBuilder(scale=1.0, include_background=False).build(include_seed=False)
    counts = store.counts()
    # CWE has roughly 900 entries and CAPEC roughly 550; the synthetic corpus
    # should be in the same range at full scale.
    assert 600 <= counts[RecordKind.WEAKNESS] <= 1100
    assert 350 <= counts[RecordKind.ATTACK_PATTERN] <= 700


def test_generated_records_have_realistic_fields():
    store = SyntheticCorpusBuilder(scale=0.02).build(include_seed=False)
    for vulnerability in list(store.vulnerabilities)[:200]:
        assert vulnerability.description.endswith(".")
        assert vulnerability.cwe_ids
        assert vulnerability.affected_platforms
        assert 0.0 <= vulnerability.base_score <= 10.0
    for weakness in list(store.weaknesses)[:100]:
        assert weakness.name
        assert weakness.consequences
    for pattern in list(store.attack_patterns)[:100]:
        assert pattern.name.startswith("Exploiting")
        assert pattern.severity in {"Medium", "High", "Very High"}


def test_background_profiles_included_by_default():
    with_background = build_corpus(scale=0.02)
    without_background = build_corpus(scale=0.02, include_background=False)
    assert len(with_background) > len(without_background)
    background_platforms = {p.key for p in BACKGROUND_PROFILES}
    assert background_platforms & set(with_background.platforms())


def test_build_corpus_includes_seed_entries():
    store = build_corpus(scale=0.02)
    assert "CWE-78" in store
    assert "CVE-2018-0101" in store


def test_custom_platform_profile():
    profile = PlatformProfile(
        key="custom rtu",
        mentions=("Custom RTU firmware",),
        vulnerability_count=10,
        cwe_pool=("CWE-306",),
        subcomponents=("serial handler",),
    )
    builder = SyntheticCorpusBuilder(
        scale=1.0, profiles=(profile,), include_background=False
    )
    store = builder.build(include_seed=False)
    assert len(store.vulnerabilities_for_platform("custom rtu")) == 10
    descriptions = [v.description for v in store.vulnerabilities]
    assert all("Custom RTU firmware" in d for d in descriptions)

"""Tests for the attack-vector -> physical-consequence mapper."""

import pytest

from repro.attacks.consequence import ConsequenceMapper
from repro.cps.hazards import HazardKind


@pytest.fixture(scope="module")
def mapper():
    # A shorter horizon keeps the module quick; 300 s is still enough for the
    # thermal runaway to develop after the 120 s attack start.
    return ConsequenceMapper(duration_s=300.0, dt=0.5)


def test_nominal_run_is_clean(mapper):
    _, report = mapper.run_nominal()
    assert not report.events


def test_mappable_records_cover_the_papers_examples(mapper):
    mappable = mapper.mappable_records()
    assert "CWE-78" in mappable
    assert "CAPEC-88" in mappable
    assert "CWE-693" in mappable


def test_scenarios_for_prefers_component_specific_matches(mapper):
    scenarios = mapper.scenarios_for("CWE-78", "BPCS Platform")
    assert scenarios
    assert all("BPCS Platform" in s.target_components for s in scenarios)


def test_scenarios_for_falls_back_to_record_matches(mapper):
    scenarios = mapper.scenarios_for("CWE-78", "Temperature Sensor")
    assert scenarios  # record-only fallback


def test_assess_cwe78_on_bpcs_reports_physical_outcome(mapper):
    assessments = mapper.assess("CWE-78", "BPCS Platform")
    assert assessments
    by_scenario = {a.scenario: a for a in assessments}
    # The SIS-protected variant loses the batch; the Triton-like variant is a
    # safety hazard.  Both connect the associated record to physical outcomes.
    assert any(a.product_lost for a in assessments)
    triton = by_scenario.get("triton-like-sis-bypass")
    assert triton is not None
    assert HazardKind.THERMAL_RUNAWAY in triton.new_hazards
    assert triton.safety_hazard
    assert not triton.sis_tripped
    contained = by_scenario.get("bpcs-command-injection")
    assert contained is not None
    assert contained.sis_tripped
    assert not contained.safety_hazard


def test_assessment_describe_is_informative(mapper):
    assessment = mapper.assess("CWE-693", "SIS Platform")[0]
    text = assessment.describe()
    assert "CWE-693" in text
    assert "SIS Platform" in text
    assert "peak temperature" in text


def test_assess_record_without_scenario_returns_empty(mapper):
    assert mapper.assess("CWE-79", "Programming WS") == []


def test_assess_association_only_runs_mappable_records(mapper, centrifuge_association):
    assessments = mapper.assess_association(centrifuge_association, max_records_per_component=1)
    assert assessments
    mappable = mapper.mappable_records()
    assert all(a.record_id in mappable for a in assessments)
    components = {a.component for a in assessments}
    assert components <= set(centrifuge_association.system.component_names())

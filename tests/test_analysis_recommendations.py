"""Tests for mitigation recommendations."""

import pytest

from repro.analysis.recommendations import (
    MITIGATION_KB,
    coverage_of_knowledge_base,
    recommend,
    recommend_for_component,
)
from repro.casestudies.centrifuge import build_centrifuge_model
from repro.corpus.seed import seed_corpus
from repro.search.engine import SearchEngine


@pytest.fixture(scope="module")
def seed_association():
    corpus = seed_corpus()
    engine = SearchEngine(corpus, fidelity_aware=False)
    return corpus, engine.associate(build_centrifuge_model())


def test_kb_entries_are_well_formed():
    for cwe, (summary, change) in MITIGATION_KB.items():
        assert cwe.startswith("CWE-")
        assert summary.endswith(".")
        assert change
        assert len(summary) > 20


def test_kb_is_covered_by_the_seed_corpus(seed_only_corpus):
    assert coverage_of_knowledge_base(seed_only_corpus) == 1.0


def test_component_recommendations_are_prioritized(seed_association):
    corpus, association = seed_association
    recommendations = recommend_for_component(association.component("BPCS Platform"), corpus)
    assert recommendations
    priorities = [r.priority for r in recommendations]
    assert priorities == sorted(priorities, reverse=True)
    assert all(r.component == "BPCS Platform" for r in recommendations)
    assert all(r.evidence_count >= 1 for r in recommendations)


def test_recommendations_reference_known_weaknesses(seed_association):
    corpus, association = seed_association
    recommendations = recommend(association, corpus, per_component=2)
    assert recommendations
    for recommendation in recommendations:
        assert recommendation.weakness_id in MITIGATION_KB
        assert recommendation.weakness_name
        assert recommendation.whatif_change
        assert recommendation.summary


def test_per_component_cap(seed_association):
    corpus, association = seed_association
    recommendations = recommend(association, corpus, per_component=1)
    per_component = {}
    for recommendation in recommendations:
        per_component[recommendation.component] = per_component.get(recommendation.component, 0) + 1
    assert all(count <= 1 for count in per_component.values())


def test_criticality_raises_priority(seed_association):
    corpus, association = seed_association
    sis = association.component("SIS Platform")
    high = recommend_for_component(sis, corpus, criticality_weight=4.0)
    low = recommend_for_component(sis, corpus, criticality_weight=0.0)
    assert high and low
    by_id_high = {r.weakness_id: r.priority for r in high}
    by_id_low = {r.weakness_id: r.priority for r in low}
    for weakness_id, priority in by_id_high.items():
        assert priority > by_id_low[weakness_id]


def test_vulnerability_evidence_counts_via_cross_references(engine, small_corpus):
    # With the synthetic corpus, the workstation's Windows 7 CVEs feed
    # weakness-class evidence through their cwe_ids cross-references.
    association = engine.associate(build_centrifuge_model())
    recommendations = recommend_for_component(association.component("Programming WS"), small_corpus)
    assert recommendations
    assert any(r.evidence_count > 5 for r in recommendations)


def test_describe_contains_the_essentials(seed_association):
    corpus, association = seed_association
    recommendation = recommend_for_component(association.component("BPCS Platform"), corpus)[0]
    text = recommendation.describe()
    assert recommendation.weakness_id in text
    assert "BPCS Platform" in text

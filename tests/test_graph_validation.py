"""Tests for system-model validation."""

from repro.casestudies.centrifuge import build_centrifuge_model
from repro.graph.attributes import Attribute
from repro.graph.model import Component, ComponentKind, Connection, SystemGraph
from repro.graph.validation import Severity, has_errors, validate_model


def test_centrifuge_model_has_no_errors(centrifuge_model):
    findings = validate_model(centrifuge_model)
    assert not has_errors(findings)


def test_isolated_component_is_flagged():
    graph = SystemGraph()
    graph.add_component(Component("lonely", attributes=(Attribute("thing x"),)))
    findings = validate_model(graph)
    assert any(f.code == "ISOLATED" for f in findings)


def test_missing_attributes_is_an_error():
    graph = SystemGraph()
    graph.add_component(Component("bare", kind=ComponentKind.CONTROLLER))
    findings = validate_model(graph)
    assert any(f.code == "NO_ATTRIBUTES" and f.severity is Severity.ERROR for f in findings)
    assert has_errors(findings)


def test_plant_and_operator_exempt_from_attribute_check():
    graph = SystemGraph()
    graph.add_component(Component("rotor", kind=ComponentKind.PLANT))
    graph.add_component(Component("operator", kind=ComponentKind.HUMAN_OPERATOR))
    findings = validate_model(graph)
    assert not any(f.code == "NO_ATTRIBUTES" for f in findings)


def test_no_entry_points_warning():
    graph = SystemGraph()
    graph.add_component(Component("a", attributes=(Attribute("controller platform"),)))
    findings = validate_model(graph)
    assert any(f.code == "NO_ENTRY_POINTS" for f in findings)


def test_air_gapped_component_is_informational():
    graph = SystemGraph()
    graph.add_component(Component("entry", entry_point=True,
                                  attributes=(Attribute("enterprise network"),)))
    graph.add_component(Component("island", kind=ComponentKind.CONTROLLER,
                                  attributes=(Attribute("embedded controller"),)))
    findings = validate_model(graph)
    air_gapped = [f for f in findings if f.code == "AIR_GAPPED"]
    assert len(air_gapped) == 1
    assert air_gapped[0].subject == "island"
    assert air_gapped[0].severity is Severity.INFO


def test_vague_attribute_warning():
    graph = SystemGraph()
    graph.add_component(Component("a", attributes=(Attribute("device"),)))
    findings = validate_model(graph)
    assert any(f.code == "VAGUE_ATTRIBUTE" for f in findings)


def test_specific_attribute_not_flagged_as_vague():
    graph = SystemGraph()
    graph.add_component(Component("a", attributes=(Attribute("Cisco ASA"),)))
    findings = validate_model(graph)
    assert not any(f.code == "VAGUE_ATTRIBUTE" for f in findings)


def test_network_connection_without_protocol_is_informational():
    graph = SystemGraph()
    graph.add_component(Component("a", attributes=(Attribute("workstation computer hardware"),)))
    graph.add_component(Component("b", attributes=(Attribute("controller platform"),)))
    graph.connect(Connection("a", "b"))
    findings = validate_model(graph)
    assert any(f.code == "NO_PROTOCOL" for f in findings)


def test_cyber_only_model_warns_about_missing_physical_process():
    graph = SystemGraph()
    graph.add_component(Component("ws", kind=ComponentKind.WORKSTATION,
                                  attributes=(Attribute("Windows 7"),), entry_point=True))
    findings = validate_model(graph)
    assert any(f.code == "NO_PHYSICAL_PROCESS" for f in findings)


def test_cps_model_does_not_warn_about_physical_process():
    model = build_centrifuge_model()
    findings = validate_model(model)
    assert not any(f.code == "NO_PHYSICAL_PROCESS" for f in findings)


def test_finding_str_contains_code_and_subject():
    graph = SystemGraph()
    graph.add_component(Component("bare", kind=ComponentKind.CONTROLLER))
    finding = [f for f in validate_model(graph) if f.code == "NO_ATTRIBUTES"][0]
    text = str(finding)
    assert "NO_ATTRIBUTES" in text
    assert "bare" in text
    assert "error" in text

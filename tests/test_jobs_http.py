"""HTTP surface of the job engine: SSE streams, cancellation, discovery.

One live two-workspace server with a job manager backs the whole module.
The acceptance bars pinned here:

* a job's final payload is byte-identical to the synchronous endpoint's
  wire bytes, for every operation,
* an association job streams >= 5 monotonic progress events over SSE,
* two named workspaces are served warm by one process with per-workspace
  stats in ``/healthz``, and ``GET /v1/ops`` makes the server
  introspectable,
* queue overflow is a typed 429, drain is a typed 503, and a subscriber
  disconnecting mid-stream harms neither the job nor the server.
"""

import json
import socket
import threading
import urllib.request

import pytest

from helpers_jobs import SLOW_SIMULATE, GateService
from repro.jobs import JobManager
from repro.service import (
    AnalysisService,
    AssociateRequest,
    ChainsRequest,
    ConsequencesRequest,
    ExportRequest,
    RecommendRequest,
    ServiceClient,
    ServiceError,
    SimulateRequest,
    Table1Request,
    TopologyRequest,
    ValidateRequest,
    WhatIfRequest,
    start_server,
)
from repro.workspace import Workspace

SCALE_A = 0.02
SCALE_B = 0.03

#: One representative request per operation, routed to workspace "b" when it
#: needs an engine (exercising the registry on every engine-backed path).
REQUESTS = {
    "associate": AssociateRequest(scale=SCALE_B, workspace="b"),
    "table1": Table1Request(scale=SCALE_B, workspace="b"),
    "whatif": WhatIfRequest(scale=SCALE_B, workspace="b"),
    "chains": ChainsRequest(scale=SCALE_B, workspace="b", limit=3),
    "topology": TopologyRequest(),
    "recommend": RecommendRequest(scale=SCALE_B, workspace="b", per_component=2),
    "simulate": SimulateRequest(scenario="nominal", duration_s=120.0),
    "consequences": ConsequencesRequest(record="CWE-78", duration_s=120.0),
    "validate": ValidateRequest(),
    "export": ExportRequest(),
}

TERMINAL = {"succeeded", "failed", "cancelled"}


@pytest.fixture(scope="module")
def live():
    """A two-workspace service with a job engine behind a real HTTP server.

    The job manager's backend is gated (``helpers_jobs.GateService``): a
    ``SLOW_SIMULATE`` job blocks deterministically until cancelled instead of
    grinding through a day of simulated plant time.  Synchronous endpoints
    and every non-sentinel job pass straight through to the real service.
    """
    service = AnalysisService(
        workspaces={
            "a": Workspace.build(scale=SCALE_A),
            "b": Workspace.build(scale=SCALE_B),
        },
        default_workspace="a",
    )
    service.warm_workspace("a")
    service.warm_workspace("b")
    jobs = JobManager(GateService(service), workers=2)
    server = start_server(service, port=0, jobs=jobs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield service, jobs, ServiceClient(f"http://{host}:{port}"), (host, port)
    server.shutdown()
    server.server_close()
    jobs.close(timeout=10.0)
    thread.join(timeout=5)


@pytest.mark.parametrize("operation", sorted(REQUESTS))
def test_job_result_byte_identical_to_sync_endpoint(live, operation):
    _, _, client, _ = live
    request = REQUESTS[operation]
    wire = client.call_raw(operation, request.to_dict())
    job = client.submit(operation, request)
    record = client.wait(job["job_id"], timeout=60.0)
    assert record["state"] == "succeeded"
    from repro.service import canonical_json

    assert canonical_json(record["result"]) == wire.decode("utf-8")


def test_association_job_streams_monotonic_progress_over_sse(live):
    _, _, client, _ = live
    # A never-before-seen request (distinct scorer) cannot be served from the
    # response cache, so the scoring loop actually runs and emits progress.
    job = client.submit(
        "associate", {"scale": SCALE_B, "workspace": "b", "scorer": "cosine"}
    )
    events = list(client.stream_events(job["job_id"]))
    seqs = [event["seq"] for event in events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
    progress = [event for event in events if event["kind"] == "progress"]
    assert len(progress) >= 5
    dones = [event["done"] for event in progress if event["phase"] == "associate"]
    assert dones == sorted(dones)  # monotonic within the phase
    assert events[-1]["kind"] == "state"
    assert events[-1]["state"] == "succeeded"


def test_sse_stream_resumes_from_after_cursor(live):
    _, _, client, _ = live
    job = client.submit("topology", {})
    record = client.wait(job["job_id"], timeout=30.0)
    assert record["state"] == "succeeded"
    all_events = list(client.stream_events(job["job_id"]))
    resumed = list(client.stream_events(job["job_id"], after=all_events[0]["seq"]))
    assert resumed == all_events[1:]


def test_wait_honours_timeout_on_a_silent_job(live):
    import time

    _, _, client, _ = live
    job = client.submit("simulate", SLOW_SIMULATE)
    start = time.monotonic()
    with pytest.raises(ServiceError) as excinfo:
        client.wait(job["job_id"], timeout=0.5)
    elapsed = time.monotonic() - start
    assert excinfo.value.code == "timeout"
    assert excinfo.value.status == 504
    assert elapsed < 10.0  # the deadline held even though the stream was live
    client.cancel(job["job_id"])
    record = client.wait(job["job_id"], timeout=30.0)
    assert record["state"] == "cancelled"


def test_job_cancel_over_http(live):
    _, _, client, _ = live
    job = client.submit("simulate", SLOW_SIMULATE)
    for event in client.stream_events(job["job_id"]):
        if event["kind"] == "progress":
            break
    client.cancel(job["job_id"])
    record = client.wait(job["job_id"], timeout=30.0)
    assert record["state"] == "cancelled"
    assert record["result"] is None


def test_sse_client_disconnect_mid_stream_is_harmless(live):
    _, jobs, client, (host, port) = live
    job = client.submit("simulate", SLOW_SIMULATE)
    # Raw socket subscriber that reads a few frames and hangs up mid-stream.
    with socket.create_connection((host, port), timeout=10.0) as raw:
        raw.sendall(
            f"GET /v1/jobs/{job['job_id']}/events HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n\r\n".encode()
        )
        chunks = b""
        while b"event:" not in chunks:
            chunks += raw.recv(4096)
        # ...and disconnect without reading the rest of the stream.
    client.cancel(job["job_id"])
    record = client.wait(job["job_id"], timeout=30.0)
    assert record["state"] == "cancelled"
    # The server is still fully functional after the broken pipe.
    assert client.health()["status"] == "ok"


def test_queue_full_over_http_is_typed_429(live):
    service, _, client, _ = live
    tight = JobManager(GateService(service), workers=1, max_queued=1)
    server = start_server(service, port=0, jobs=tight)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    tight_client = ServiceClient(f"http://{host}:{port}")
    try:
        running = tight_client.submit("simulate", SLOW_SIMULATE)
        for event in tight_client.stream_events(running["job_id"]):
            if event["kind"] == "progress":
                break
        tight_client.submit("simulate", SLOW_SIMULATE)
        with pytest.raises(ServiceError) as excinfo:
            tight_client.submit("topology", {})
        assert excinfo.value.status == 429
        assert excinfo.value.code == "queue_full"
    finally:
        for record in tight_client.jobs():
            tight_client.cancel(record["job_id"])
        server.shutdown()
        server.server_close()
        tight.close(timeout=30.0)
        thread.join(timeout=5)


def test_draining_server_refuses_submissions_and_reports_it(live):
    service, _, client, _ = live
    draining = JobManager(service, workers=1)
    server = start_server(service, port=0, jobs=draining)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    drain_client = ServiceClient(f"http://{host}:{port}")
    try:
        draining.begin_drain()
        with pytest.raises(ServiceError) as excinfo:
            drain_client.submit("topology", {})
        assert excinfo.value.status == 503
        assert excinfo.value.code == "shutting_down"
        assert drain_client.health()["status"] == "draining"
        # Synchronous requests still drain through normally.
        assert drain_client.call_raw("topology", {})
    finally:
        server.shutdown()
        server.server_close()
        draining.close(timeout=10.0)
        thread.join(timeout=5)


def test_jobs_disabled_server_answers_typed_503(live):
    service, _, _, _ = live
    server = start_server(service, port=0)  # no job manager
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    try:
        with pytest.raises(ServiceError) as excinfo:
            client.submit("topology", {})
        assert excinfo.value.status == 503
        assert excinfo.value.code == "jobs_disabled"
        assert client.ops()["jobs_enabled"] is False
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_unknown_job_is_404_everywhere(live):
    _, _, client, _ = live
    for call in (
        lambda: client.job("job-missing"),
        lambda: client.cancel("job-missing"),
        lambda: list(client.stream_events("job-missing")),
    ):
        with pytest.raises(ServiceError) as excinfo:
            call()
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_job"


def test_ops_discovery_endpoint(live):
    _, _, client, _ = live
    payload = client.ops()
    assert payload["schema_version"] == 1
    assert payload["jobs_enabled"] is True
    assert sorted(payload["workspaces"]) == ["a", "b"]
    assert payload["default_workspace"] == "a"
    # Discovery lists every operation: the pure ones the REQUESTS table
    # covers plus the mutating extend/compact operations.
    assert set(payload["operations"]) == set(REQUESTS) | {"extend", "compact"}
    fields = payload["operations"]["associate"]["request_fields"]
    assert "workspace" in fields and "scale" in fields


def test_healthz_reports_jobs_and_per_workspace_stats(live):
    _, _, client, _ = live
    client.submit("associate", {"scale": SCALE_A, "workspace": "a"})
    payload = client.health()
    assert payload["status"] == "ok"
    assert payload["jobs"]["workers"] == 2
    assert payload["jobs"]["total"] >= 1
    assert set(payload["jobs"]["by_state"]) == {
        "queued", "running", "succeeded", "failed", "cancelled"
    }
    workspaces = payload["workspaces"]
    assert set(workspaces) == {"a", "b"}
    assert workspaces["a"]["loaded"] and workspaces["b"]["loaded"]
    assert workspaces["a"]["scale"] == SCALE_A
    assert workspaces["b"]["scale"] == SCALE_B
    for stats in workspaces.values():
        assert stats["engine_pool"]["engines"] >= 1
        assert "evictions" in stats["engine_pool"]
    registry = payload["workspace_registry"]
    assert registry["registered"] == 2
    assert registry["warm"] == 2
    assert registry["default"] == "a"


def test_workspace_routing_and_mismatch_over_http(live):
    service, _, client, _ = live
    # Routed to "b" explicitly == what a plain single-workspace service says.
    wire = client.call_raw("associate", {"scale": SCALE_B, "workspace": "b"})
    plain = AnalysisService().associate(AssociateRequest(scale=SCALE_B))
    from repro.service import canonical_json

    assert wire.decode("utf-8") == canonical_json(plain.to_dict())
    # Explicitly asking a workspace for a scale it does not serve is a 409.
    with pytest.raises(ServiceError) as excinfo:
        client.call_raw("associate", {"scale": SCALE_A, "workspace": "b"})
    assert excinfo.value.status == 409
    assert excinfo.value.code == "workspace_scale_mismatch"
    # Naming an unregistered workspace is a 404 with the known names.
    with pytest.raises(ServiceError) as excinfo:
        client.call_raw("topology", {"workspace": "zz"})
    assert excinfo.value.status == 404
    assert excinfo.value.code == "unknown_workspace"
    assert excinfo.value.details["known_workspaces"] == ["a", "b"]


def test_post_routes_ignore_query_strings(live):
    _, _, client, _ = live
    job = client.submit("simulate", SLOW_SIMULATE)
    # Cancel through a query-string-bearing URL: must hit the same route.
    record = json.loads(
        client._request("POST", f"/v1/jobs/{job['job_id']}/cancel?source=ui", b"{}")
    )
    assert record["job_id"] == job["job_id"]
    assert client.wait(job["job_id"], timeout=30.0)["state"] == "cancelled"


def test_submit_scheduling_fields_over_http(live):
    """priority/weight/depends_on ride the submission envelope end to end."""
    _, _, client, _ = live
    parent = client.submit("topology", {}, priority="interactive", weight=2.0)
    record = client.wait(parent["job_id"], timeout=30.0)
    assert record["state"] == "succeeded"
    assert record["priority"] == "interactive"
    assert record["weight"] == 2.0
    assert record["depends_on"] == []
    merge = client.submit(
        "merge",
        {"labels": {parent["job_id"]: "only"}},
        depends_on=[parent["job_id"]],
    )
    merged = client.wait(merge["job_id"], timeout=30.0)
    assert merged["state"] == "succeeded"
    assert merged["depends_on"] == [parent["job_id"]]
    assert merged["result"]["results"] == {"only": record["result"]}


def test_default_priority_is_inferred_per_operation_over_http(live):
    _, _, client, _ = live
    batch = client.submit("simulate", SLOW_SIMULATE)
    assert batch["priority"] == "batch"
    interactive = client.submit("topology", {})
    assert interactive["priority"] == "interactive"
    client.cancel(batch["job_id"])
    client.wait(batch["job_id"], timeout=30.0)
    client.wait(interactive["job_id"], timeout=30.0)


def test_invalid_scheduling_fields_are_typed_errors(live):
    _, _, client, _ = live
    with pytest.raises(ServiceError) as excinfo:
        client.submit("topology", {}, priority="urgent")
    assert excinfo.value.status == 400
    assert excinfo.value.code == "invalid_priority"
    with pytest.raises(ServiceError) as excinfo:
        client.submit("topology", {}, weight=0)
    assert excinfo.value.code == "invalid_weight"
    with pytest.raises(ServiceError) as excinfo:
        client.submit("topology", {}, depends_on=["job-missing"])
    assert excinfo.value.code == "unknown_dependency"
    assert excinfo.value.details["unknown"] == ["job-missing"]
    with pytest.raises(ServiceError) as excinfo:
        client.submit("merge", {})
    assert excinfo.value.code == "invalid_dependencies"


def test_healthz_reports_scheduler_and_wait_percentiles(live):
    _, _, client, _ = live
    job = client.submit("topology", {})
    client.wait(job["job_id"], timeout=30.0)
    stats = client.health()["jobs"]
    assert stats["policy"] == "fair"
    assert set(stats["by_priority"]) == {"interactive", "batch"}
    assert set(stats["by_priority"]["interactive"]) == {"queued", "running"}
    assert stats["scheduler"]["policy"] == "fair"
    assert stats["scheduler"]["dispatched"]["interactive"] >= 1
    wait = stats["wait_s"]["interactive"]
    assert wait["count"] >= 1
    assert wait["p50"] is not None
    assert wait["p95"] >= wait["p50"] >= 0.0
    assert stats["quota"] is None  # the live server runs without a quota


def test_quota_exhaustion_over_http_is_typed_429(live):
    """An exhausted token bucket is a typed 429 with retry_after details."""
    service, _, _, _ = live
    limited = JobManager(service, workers=1, quota=(0.001, 2))
    server = start_server(service, port=0, jobs=limited)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    quota_client = ServiceClient(f"http://{host}:{port}")
    try:
        for _ in range(2):  # burst capacity
            quota_client.submit("topology", {}, client_id="alice")
        with pytest.raises(ServiceError) as excinfo:
            quota_client.submit("topology", {}, client_id="alice")
        assert excinfo.value.status == 429
        assert excinfo.value.code == "quota_exhausted"
        assert excinfo.value.details["client"] == "alice"
        assert excinfo.value.details["retry_after_s"] > 0
        # A different client has its own bucket.
        quota_client.submit("topology", {}, client_id="bob")
        assert quota_client.health()["jobs"]["quota"]["rejections"] == 1
    finally:
        server.shutdown()
        server.server_close()
        limited.close(timeout=10.0)
        thread.join(timeout=5)


def test_sse_frames_are_well_formed(live):
    """The raw wire format: id/event/data frames, blank-line separated."""
    _, _, client, (host, port) = live
    job = client.submit("topology", {})
    client.wait(job["job_id"], timeout=30.0)
    with urllib.request.urlopen(
        f"http://{host}:{port}/v1/jobs/{job['job_id']}/events", timeout=30.0
    ) as stream:
        assert stream.headers["Content-Type"] == "text/event-stream"
        body = stream.read().decode("utf-8")
    frames = [frame for frame in body.split("\n\n") if frame.strip()]
    assert frames
    for frame in frames:
        lines = frame.split("\n")
        assert lines[0].startswith("id: ")
        assert lines[1].startswith("event: ")
        assert lines[2].startswith("data: ")
        payload = json.loads(lines[2][len("data: "):])
        assert payload["seq"] == int(lines[0][len("id: "):])

"""Tests for sensors, the PID controller, and the BPCS controller."""

import numpy as np
import pytest

from repro.cps.control import BpcsController, ControlMode, PidController
from repro.cps.sensors import Sensor, Tachometer, TemperatureSensor


# -- sensors -------------------------------------------------------------------


def test_sensor_parameter_validation():
    with pytest.raises(ValueError):
        Sensor("s", noise_std=-1.0)
    with pytest.raises(ValueError):
        Sensor("s", quantization=-0.1)


def test_noiseless_sensor_reads_truth():
    sensor = Sensor("ideal")
    assert sensor.measure(42.0) == 42.0


def test_sensor_bias_and_quantization():
    sensor = Sensor("biased", bias=1.0, quantization=0.5)
    assert sensor.measure(10.1) == pytest.approx(11.0)


def test_sensor_noise_is_deterministic_per_seed():
    first = Sensor("a", noise_std=0.5, seed=42)
    second = Sensor("b", noise_std=0.5, seed=42)
    readings_first = [first.measure(10.0) for _ in range(5)]
    readings_second = [second.measure(10.0) for _ in range(5)]
    assert readings_first == readings_second
    assert len(set(readings_first)) > 1


def test_sensor_spoofing_overrides_and_clears():
    sensor = Sensor("s", noise_std=0.1, seed=1)
    sensor.spoof(99.0)
    assert sensor.spoofed
    assert sensor.measure(10.0) == 99.0
    sensor.clear_spoof()
    assert not sensor.spoofed
    assert sensor.measure(10.0) != 99.0


def test_temperature_sensor_accuracy_envelope():
    sensor = TemperatureSensor(seed=5)
    errors = [abs(sensor.measure(20.0) - 20.0) for _ in range(500)]
    # The paper's probe is accurate to +/- 0.2 degC; allow the occasional
    # 3-sigma excursion but require the envelope to hold on average.
    assert np.mean(errors) < 0.1
    assert np.percentile(errors, 99) < 0.25


def test_tachometer_accuracy_envelope():
    sensor = Tachometer(seed=5)
    errors = [abs(sensor.measure(6000.0) - 6000.0) for _ in range(500)]
    assert np.mean(errors) < 0.5
    assert np.percentile(errors, 99) < 1.5


# -- PID ------------------------------------------------------------------------


def test_pid_output_limits_validation():
    with pytest.raises(ValueError):
        PidController(kp=1.0, output_min=1.0, output_max=0.0)


def test_pid_requires_positive_dt():
    with pytest.raises(ValueError):
        PidController(kp=1.0).update(1.0, 0.0, 0.0)


def test_pid_proportional_action():
    pid = PidController(kp=0.1, output_min=-10, output_max=10)
    assert pid.update(10.0, 0.0, 1.0) == pytest.approx(1.0)
    assert pid.update(0.0, 10.0, 1.0) < 0


def test_pid_output_is_clamped():
    pid = PidController(kp=100.0)
    assert pid.update(10.0, 0.0, 1.0) == 1.0
    assert pid.update(-10.0, 0.0, 1.0) == 0.0


def test_pid_integral_removes_steady_state_error():
    pid = PidController(kp=0.05, ki=0.5, output_min=0.0, output_max=2.0)
    # Plant: output value follows control with gain 1 (static); target 1.0
    # requires control 1.0 which pure P with kp=0.05 cannot reach.
    value = 0.0
    for _ in range(300):
        control = pid.update(1.0, value, 0.1)
        value = control
    assert value == pytest.approx(1.0, abs=0.05)


def test_pid_anti_windup_freezes_integral_when_saturated():
    pid = PidController(kp=0.0, ki=1.0, output_min=0.0, output_max=1.0)
    for _ in range(100):
        pid.update(10.0, 0.0, 1.0)
    # After saturation, a small reversed error should bring the output off the
    # rail quickly instead of unwinding a huge integral.
    outputs = [pid.update(-1.0, 0.0, 1.0) for _ in range(3)]
    assert outputs[-1] < 1.0


def test_pid_reset_clears_memory():
    pid = PidController(kp=0.1, ki=0.1, kd=0.1)
    pid.update(1.0, 0.0, 1.0)
    pid.reset()
    assert pid._integral == 0.0
    assert pid._previous_error is None


# -- BPCS -----------------------------------------------------------------------


def test_bpcs_idle_mode_keeps_drive_at_zero():
    controller = BpcsController()
    drive, cooling = controller.compute(0.0, 25.0, 0.5)
    assert drive == 0.0
    assert cooling >= 0.0


def test_bpcs_run_mode_drives_toward_setpoint():
    controller = BpcsController()
    controller.set_mode(ControlMode.RUN)
    controller.set_speed_setpoint(6000.0)
    drive, _ = controller.compute(0.0, 20.0, 0.5)
    assert drive > 0.5


def test_bpcs_setpoint_clamped_to_machine_limit():
    controller = BpcsController()
    controller.set_speed_setpoint(50_000.0)
    assert controller.speed_setpoint_rpm == controller.max_speed_setpoint_rpm
    controller.set_speed_setpoint(-10.0)
    assert controller.speed_setpoint_rpm == 0.0


def test_bpcs_cooling_increases_when_too_hot():
    controller = BpcsController(temperature_setpoint_c=20.0)
    _, cooling_hot = controller.compute(0.0, 30.0, 0.5)
    controller_cold = BpcsController(temperature_setpoint_c=20.0)
    _, cooling_cold = controller_cold.compute(0.0, 10.0, 0.5)
    assert cooling_hot > cooling_cold
    assert cooling_cold == 0.0


def test_bpcs_shutdown_stops_drive_and_cooling():
    controller = BpcsController()
    controller.set_mode(ControlMode.RUN)
    controller.set_speed_setpoint(5000.0)
    controller.set_mode(ControlMode.SHUTDOWN)
    drive, cooling = controller.compute(4000.0, 25.0, 0.5)
    assert drive == 0.0
    assert cooling == 0.0


def test_bpcs_mode_change_resets_speed_loop():
    controller = BpcsController()
    controller.set_mode(ControlMode.RUN)
    controller.set_speed_setpoint(5000.0)
    for _ in range(20):
        controller.compute(1000.0, 20.0, 0.5)
    controller.set_mode(ControlMode.IDLE)
    assert controller.speed_pid._integral == 0.0

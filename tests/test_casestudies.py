"""Tests for the case-study models (centrifuge SCADA and UAV)."""

import pytest

from repro.casestudies.centrifuge import (
    build_centrifuge_model,
    build_centrifuge_sysml,
    hardened_workstation_variant,
)
from repro.casestudies.uav import build_uav_model
from repro.graph.attributes import Fidelity
from repro.graph.model import ComponentKind
from repro.graph.validation import has_errors, validate_model


PAPER_COMPONENTS = (
    "Programming WS",
    "Control Firewall",
    "SIS Platform",
    "BPCS Platform",
    "Temperature Sensor",
    "Centrifuge",
)

TABLE1_ATTRIBUTES = (
    "Cisco ASA",
    "NI RT Linux OS",
    "Windows 7",
    "Labview",
    "NI cRIO 9063",
    "NI cRIO 9064",
)


def test_centrifuge_model_contains_the_papers_components(centrifuge_model):
    for name in PAPER_COMPONENTS:
        assert name in centrifuge_model


def test_centrifuge_model_contains_table1_attributes(centrifuge_model):
    attribute_names = {attr.name for _, attr in centrifuge_model.all_attributes()}
    for name in TABLE1_ATTRIBUTES:
        assert name in attribute_names


def test_centrifuge_component_kinds(centrifuge_model):
    assert centrifuge_model.component("SIS Platform").kind is ComponentKind.SAFETY_SYSTEM
    assert centrifuge_model.component("BPCS Platform").kind is ComponentKind.CONTROLLER
    assert centrifuge_model.component("Control Firewall").kind is ComponentKind.FIREWALL
    assert centrifuge_model.component("Centrifuge").kind is ComponentKind.PLANT


def test_corporate_network_is_the_entry_point(centrifuge_model):
    entries = [component.name for component in centrifuge_model.entry_points()]
    assert entries == ["Corporate Network"]


def test_centrifuge_model_is_structurally_valid(centrifuge_model):
    assert not has_errors(validate_model(centrifuge_model))


def test_modbus_appears_on_the_bpcs_and_its_link(centrifuge_model):
    assert "MODBUS" in centrifuge_model.component("BPCS Platform").attribute_names()
    protocols = {connection.protocol for connection in centrifuge_model.connections}
    assert "MODBUS" in protocols


def test_physical_process_is_connected_to_the_controllers(centrifuge_model):
    assert centrifuge_model.is_reachable("Corporate Network", "Centrifuge")
    assert centrifuge_model.exposure_distance("BPCS Platform") == 3


def test_fidelity_capped_builds():
    conceptual = build_centrifuge_model(Fidelity.CONCEPTUAL)
    logical = build_centrifuge_model(Fidelity.LOGICAL)
    implementation = build_centrifuge_model(Fidelity.IMPLEMENTATION)
    counts = [len(m.all_attributes()) for m in (conceptual, logical, implementation)]
    assert counts[0] < counts[1] < counts[2]
    conceptual_names = {a.name for _, a in conceptual.all_attributes()}
    assert "Windows 7" not in conceptual_names
    assert "Windows 7" not in {a.name for _, a in logical.all_attributes()}


def test_sysml_export_matches_direct_model():
    from_sysml = build_centrifuge_sysml().to_system_graph()
    direct = build_centrifuge_model()
    assert set(from_sysml.component_names()) == set(direct.component_names())
    for name in TABLE1_ATTRIBUTES:
        sysml_attrs = {a.name for _, a in from_sysml.all_attributes()}
        assert name in sysml_attrs
    assert from_sysml.component("Corporate Network").entry_point
    assert len(from_sysml.connections) == len(direct.connections)


def test_sysml_export_is_associable(engine):
    association = engine.associate(build_centrifuge_sysml().to_system_graph())
    rows = {row["attribute"]: row for row in association.attribute_table()}
    assert rows["Windows 7"]["vulnerabilities"] > 0


def test_hardened_variant_only_touches_the_workstation(centrifuge_model):
    variant = hardened_workstation_variant(centrifuge_model)
    assert "Windows 7" not in variant.component("Programming WS").attribute_names()
    assert "hardened thin client" in variant.component("Programming WS").attribute_names()
    for name in centrifuge_model.component_names():
        if name == "Programming WS":
            continue
        assert variant.component(name).attribute_names() == centrifuge_model.component(
            name
        ).attribute_names()
    # The original is untouched.
    assert "Windows 7" in centrifuge_model.component("Programming WS").attribute_names()


def test_uav_model_structure():
    uav = build_uav_model()
    assert len(uav) == 7
    assert uav.component("Flight Controller").kind is ComponentKind.CONTROLLER
    assert {c.name for c in uav.entry_points()} == {"Ground Control Station", "Telemetry Radio"}
    assert uav.is_reachable("Ground Control Station", "Airframe")
    assert not has_errors(validate_model(uav))


def test_uav_model_is_associable(engine):
    association = engine.associate(build_uav_model())
    assert association.total > 0
    assert association.component("Ground Control Station").total > 0


@pytest.mark.parametrize("builder", [build_centrifuge_model, build_uav_model])
def test_models_round_trip_through_graphml(tmp_path, builder):
    from repro.graph.graphml import read_graphml, write_graphml

    model = builder()
    path = write_graphml(model, tmp_path / "model.graphml")
    clone = read_graphml(path)
    assert clone.component_names() == model.component_names()

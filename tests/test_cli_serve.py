"""End-to-end ``cpsec serve`` process tests: startup, jobs, graceful signal
shutdown.

These run the real console entry point as a subprocess: the signal handling
and drain sequencing cannot be meaningfully tested in-process.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.jobs.store import read_journal
from repro.service import ServiceClient
from repro.workspace import Workspace

SCALE = 0.02

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "serve.cpsecws"
    Workspace.build(scale=SCALE).save(path)
    return path


def _spawn_serve(artifact: Path, *extra: str) -> tuple[subprocess.Popen, str, list]:
    """Start ``cpsec serve`` on a free port; returns (process, url, stdout lines)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--workspace", f"main={artifact}",
            "--port", "0",
            *extra,
        ],
        cwd=artifact.parent,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines: list[str] = []

    def _pump() -> None:
        for line in process.stdout:
            lines.append(line.rstrip("\n"))

    threading.Thread(target=_pump, daemon=True).start()
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        banner = next((line for line in lines if "serving analysis service" in line), None)
        if banner:
            url = banner.split("on ", 1)[1].split(" ", 1)[0]
            return process, url, lines
        if process.poll() is not None:
            break
        time.sleep(0.1)
    process.kill()
    raise AssertionError(f"serve did not come up; output so far: {lines}")


def test_serve_drains_gracefully_on_sigterm(artifact):
    process, url, lines = _spawn_serve(artifact)
    try:
        client = ServiceClient(url)
        health = client.health()
        assert health["status"] == "ok"
        assert health["workspaces"]["main"]["loaded"]
        job = client.submit("associate", {"scale": SCALE})
        record = client.wait(job["job_id"], timeout=60.0)
        assert record["state"] == "succeeded"

        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30.0) == 0
    finally:
        if process.poll() is None:
            process.kill()
    output = "\n".join(lines)
    assert "refusing new submissions" in output
    assert "shutdown complete" in output
    assert "jobs drained, journal flushed" in output

    # The journal landed next to the first workspace and replays the job.
    journal = artifact.parent / f"{artifact.name}.jobs.jsonl"
    assert journal.exists()
    kinds = [entry["kind"] for entry in read_journal(journal)]
    assert "submitted" in kinds and "finished" in kinds

    # A second serve over the same journal replays the history.
    process2, url2, _ = _spawn_serve(artifact)
    try:
        replayed = ServiceClient(url2).job(job["job_id"])
        assert replayed["state"] == "succeeded"
        assert replayed["replayed"] is True
        assert replayed["result"] == record["result"]
    finally:
        process2.send_signal(signal.SIGTERM)
        try:
            process2.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            process2.kill()


def test_serve_rejects_bad_workspace_specs(artifact, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--workspace", f"main={artifact}",
            "--workspace", f"main={artifact}",
            "--port", "0",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2
    assert "duplicate workspace name" in result.stderr
    missing = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--workspace", str(tmp_path / "ghost.cpsecws"),
            "--port", "0",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert missing.returncode == 2
    assert "workspace artifact not found" in missing.stderr

"""Tests for hazard definitions and trace evaluation."""

import numpy as np
import pytest

from repro.cps.hazards import HazardEvent, HazardKind, HazardMonitor, HazardReport


def make_trace(length=200, dt=1.0):
    times = np.arange(length) * dt
    temperatures = np.full(length, 20.0)
    speeds = np.full(length, 6000.0)
    setpoints = np.full(length, 6000.0)
    return times, temperatures, speeds, setpoints


def test_event_validation_and_duration():
    with pytest.raises(ValueError):
        HazardEvent(HazardKind.THERMAL_RUNAWAY, 10.0, 5.0, 31.0)
    event = HazardEvent(HazardKind.THERMAL_RUNAWAY, 10.0, 20.0, 31.0)
    assert event.duration_s == 10.0


def test_hazard_kind_safety_classification():
    assert HazardKind.THERMAL_RUNAWAY.is_safety_hazard
    assert HazardKind.ROTOR_OVERSPEED.is_safety_hazard
    assert not HazardKind.PRODUCT_VISCOUS.is_safety_hazard
    assert not HazardKind.SPEED_DEVIATION.is_safety_hazard


def test_clean_trace_has_no_hazards():
    monitor = HazardMonitor()
    report = monitor.evaluate(*make_trace())
    assert len(report) == 0
    assert not report.product_lost
    assert not report.any_safety_hazard


def test_mismatched_lengths_rejected():
    times, temperatures, speeds, setpoints = make_trace()
    with pytest.raises(ValueError):
        HazardMonitor().evaluate(times, temperatures[:-1], speeds, setpoints)


def test_thermal_runaway_detected():
    times, temperatures, speeds, setpoints = make_trace()
    temperatures[100:130] = 35.0
    report = HazardMonitor().evaluate(times, temperatures, speeds, setpoints)
    assert report.occurred(HazardKind.THERMAL_RUNAWAY)
    event = report.of_kind(HazardKind.THERMAL_RUNAWAY)[0]
    assert event.start_time_s == 100.0
    assert event.end_time_s == 129.0
    assert event.peak_value == pytest.approx(35.0)
    assert report.any_safety_hazard
    assert report.product_lost


def test_viscous_product_detected_only_while_running():
    times, temperatures, speeds, setpoints = make_trace()
    temperatures[:50] = 8.0
    report = HazardMonitor().evaluate(times, temperatures, speeds, setpoints)
    assert report.occurred(HazardKind.PRODUCT_VISCOUS)
    # Same temperatures with the process idle (setpoint zero) are not hazardous.
    idle_report = HazardMonitor().evaluate(
        times, temperatures, speeds, np.zeros_like(setpoints)
    )
    assert not idle_report.occurred(HazardKind.PRODUCT_VISCOUS)


def test_speed_deviation_detected_after_settling_window():
    times, temperatures, speeds, setpoints = make_trace()
    speeds[150:170] = 6050.0
    report = HazardMonitor(settling_time_s=60.0).evaluate(times, temperatures, speeds, setpoints)
    assert report.occurred(HazardKind.SPEED_DEVIATION)
    event = report.of_kind(HazardKind.SPEED_DEVIATION)[0]
    assert event.peak_value == pytest.approx(50.0)


def test_speed_transient_after_setpoint_change_is_not_a_hazard():
    times, temperatures, speeds, setpoints = make_trace()
    # Set point steps at t=100; the speed takes 30 s to catch up.
    setpoints[100:] = 7000.0
    speeds[100:130] = np.linspace(6000.0, 7000.0, 30)
    speeds[130:] = 7000.0
    report = HazardMonitor(settling_time_s=60.0).evaluate(times, temperatures, speeds, setpoints)
    assert not report.occurred(HazardKind.SPEED_DEVIATION)


def test_rotor_overspeed_detected():
    times, temperatures, speeds, setpoints = make_trace()
    speeds[50:60] = 10_500.0
    report = HazardMonitor().evaluate(times, temperatures, speeds, setpoints)
    assert report.occurred(HazardKind.ROTOR_OVERSPEED)


def test_multiple_intervals_produce_multiple_events():
    times, temperatures, speeds, setpoints = make_trace()
    temperatures[20:30] = 32.0
    temperatures[60:70] = 33.0
    report = HazardMonitor().evaluate(times, temperatures, speeds, setpoints)
    assert len(report.of_kind(HazardKind.THERMAL_RUNAWAY)) == 2


def test_hazard_open_interval_at_end_of_trace_is_closed():
    times, temperatures, speeds, setpoints = make_trace()
    temperatures[-10:] = 40.0
    report = HazardMonitor().evaluate(times, temperatures, speeds, setpoints)
    event = report.of_kind(HazardKind.THERMAL_RUNAWAY)[0]
    assert event.end_time_s == times[-1]


def test_events_sorted_by_start_time():
    times, temperatures, speeds, setpoints = make_trace()
    speeds[150:160] = 6100.0
    temperatures[20:30] = 32.0
    report = HazardMonitor().evaluate(times, temperatures, speeds, setpoints)
    starts = [event.start_time_s for event in report.events]
    assert starts == sorted(starts)


def test_summary_counts_by_kind():
    times, temperatures, speeds, setpoints = make_trace()
    temperatures[20:30] = 32.0
    report = HazardMonitor().evaluate(times, temperatures, speeds, setpoints)
    summary = report.summary()
    assert summary["thermal_runaway"] == 1
    assert summary["speed_deviation"] == 0


def test_empty_report_helpers():
    report = HazardReport()
    assert not report.occurred(HazardKind.THERMAL_RUNAWAY)
    assert report.of_kind(HazardKind.THERMAL_RUNAWAY) == []

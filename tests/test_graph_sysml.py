"""Tests for the SysML front end and its export to the general model."""

import pytest

from repro.graph.attributes import AttributeKind, Fidelity
from repro.graph.model import ComponentKind
from repro.graph.sysml import Block, InternalBlockDiagram, Port


def build_diagram() -> InternalBlockDiagram:
    diagram = InternalBlockDiagram("demo")
    controller = Block("Controller", stereotype="controller", criticality=0.9)
    controller.add_property("os", "NI RT Linux OS", Fidelity.IMPLEMENTATION)
    controller.add_property("function", "process control", Fidelity.CONCEPTUAL)
    controller.add_port("bus", protocol="MODBUS")
    workstation = Block("Workstation", stereotype="workstation", entry_point=True)
    workstation.add_property("os", "Windows 7", Fidelity.IMPLEMENTATION)
    workstation.add_port("bus", protocol="MODBUS")
    diagram.add_block(controller)
    diagram.add_block(workstation)
    diagram.connect("Workstation", "bus", "Controller", "bus", protocol="MODBUS")
    return diagram


def test_port_direction_validation():
    with pytest.raises(ValueError):
        Port("p", direction="sideways")


def test_block_property_chaining_and_port_lookup():
    block = Block("B")
    assert block.add_property("software", "Labview") is block
    port = block.add_port("eth", protocol="Ethernet/IP")
    assert block.port("eth") is port
    with pytest.raises(KeyError):
        block.port("missing")


def test_diagram_rejects_duplicates_and_unknown_blocks():
    diagram = InternalBlockDiagram("d")
    diagram.add_block(Block("A"))
    with pytest.raises(ValueError):
        diagram.add_block(Block("A"))
    with pytest.raises(KeyError):
        diagram.block("missing")
    with pytest.raises(ValueError):
        InternalBlockDiagram("")


def test_connect_requires_existing_ports():
    diagram = InternalBlockDiagram("d")
    a = Block("A")
    a.add_port("p")
    diagram.add_block(a)
    diagram.add_block(Block("B"))
    with pytest.raises(KeyError):
        diagram.connect("A", "p", "B", "missing")


def test_export_maps_stereotypes_to_kinds():
    graph = build_diagram().to_system_graph()
    assert graph.component("Controller").kind is ComponentKind.CONTROLLER
    assert graph.component("Workstation").kind is ComponentKind.WORKSTATION


def test_export_maps_properties_to_attributes():
    graph = build_diagram().to_system_graph()
    controller = graph.component("Controller")
    names = controller.attribute_names()
    assert "NI RT Linux OS" in names
    assert "process control" in names
    by_name = {attr.name: attr for attr in controller.attributes}
    assert by_name["NI RT Linux OS"].kind is AttributeKind.OPERATING_SYSTEM
    assert by_name["NI RT Linux OS"].fidelity is Fidelity.IMPLEMENTATION
    assert by_name["process control"].fidelity is Fidelity.CONCEPTUAL


def test_export_adds_port_protocol_attributes():
    graph = build_diagram().to_system_graph()
    names = graph.component("Controller").attribute_names()
    assert "MODBUS" in names


def test_export_carries_entry_point_and_criticality():
    graph = build_diagram().to_system_graph()
    assert graph.component("Workstation").entry_point
    assert graph.component("Controller").criticality == pytest.approx(0.9)


def test_export_creates_connections_with_protocol():
    graph = build_diagram().to_system_graph()
    assert len(graph.connections) == 1
    connection = graph.connections[0]
    assert connection.protocol == "MODBUS"
    assert connection.endpoints() == ("Workstation", "Controller")


def test_export_uses_source_port_protocol_when_connector_has_none():
    diagram = InternalBlockDiagram("d")
    a = Block("A")
    a.add_port("p", protocol="Ethernet/IP")
    b = Block("B")
    b.add_port("q")
    diagram.add_block(a)
    diagram.add_block(b)
    diagram.connect("A", "p", "B", "q")
    graph = diagram.to_system_graph()
    assert graph.connections[0].protocol == "Ethernet/IP"


def test_unknown_stereotype_maps_to_other():
    diagram = InternalBlockDiagram("d")
    diagram.add_block(Block("X", stereotype="mystery"))
    graph = diagram.to_system_graph()
    assert graph.component("X").kind is ComponentKind.OTHER


def test_plain_string_properties_default_to_logical_fidelity():
    diagram = InternalBlockDiagram("d")
    block = Block("X")
    block.properties["software"] = ["Labview"]
    diagram.add_block(block)
    graph = diagram.to_system_graph()
    attr = graph.component("X").attributes[0]
    assert attr.fidelity is Fidelity.LOGICAL

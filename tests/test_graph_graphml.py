"""Tests for GraphML import/export."""

import pytest

from repro.casestudies.centrifuge import build_centrifuge_model
from repro.graph.graphml import (
    from_graphml_string,
    read_graphml,
    to_graphml_string,
    write_graphml,
)


def test_round_trip_string(centrifuge_model):
    text = to_graphml_string(centrifuge_model)
    clone = from_graphml_string(text)
    assert clone.name == centrifuge_model.name
    assert clone.component_names() == centrifuge_model.component_names()
    assert len(clone.connections) == len(centrifuge_model.connections)


def test_round_trip_preserves_attributes(centrifuge_model):
    clone = from_graphml_string(to_graphml_string(centrifuge_model))
    original_ws = centrifuge_model.component("Programming WS")
    clone_ws = clone.component("Programming WS")
    assert clone_ws.attribute_names() == original_ws.attribute_names()
    original_attr = original_ws.attributes[-1]
    clone_attr = clone_ws.attributes[-1]
    assert clone_attr.kind is original_attr.kind
    assert clone_attr.fidelity is original_attr.fidelity
    assert clone_attr.description == original_attr.description


def test_round_trip_preserves_component_metadata(centrifuge_model):
    clone = from_graphml_string(to_graphml_string(centrifuge_model))
    assert clone.component("Corporate Network").entry_point
    assert clone.component("SIS Platform").criticality == pytest.approx(1.0)
    assert clone.component("BPCS Platform").kind is centrifuge_model.component("BPCS Platform").kind


def test_round_trip_preserves_connections(centrifuge_model):
    clone = from_graphml_string(to_graphml_string(centrifuge_model))
    protocols = {(c.source, c.target): c.protocol for c in clone.connections}
    assert protocols[("Programming WS", "BPCS Platform")] == "MODBUS"
    media = {(c.source, c.target): c.medium for c in clone.connections}
    assert media[("Centrifuge", "Temperature Sensor")] == "physical"


def test_file_round_trip(tmp_path):
    model = build_centrifuge_model()
    path = write_graphml(model, tmp_path / "model.graphml")
    assert path.exists()
    clone = read_graphml(path)
    assert clone.component_names() == model.component_names()


def test_output_is_valid_graphml_structure(centrifuge_model):
    text = to_graphml_string(centrifuge_model)
    assert text.startswith("<?xml")
    assert "graphml" in text
    assert "<node" in text and "<edge" in text


def test_document_without_graph_rejected():
    with pytest.raises(ValueError):
        from_graphml_string("<graphml xmlns='http://graphml.graphdrawing.org/xmlns'></graphml>")

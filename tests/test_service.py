"""Behavioural tests for the in-process :class:`AnalysisService`.

The service must be a pure re-plumbing of the library: every operation's
response carries exactly what the corresponding direct library calls
produce, artifacts (workspace/snapshot) only change construction time, and
request-level failures surface as typed :class:`ServiceError`\\ s.
"""

import pytest

from repro.analysis.metrics import compute_posture, severity_histogram
from repro.analysis.whatif import WhatIfStudy
from repro.casestudies.centrifuge import (
    build_centrifuge_model,
    hardened_workstation_variant,
)
from repro.corpus.synthesis import build_corpus
from repro.graph.graphml import from_graphml_string
from repro.search.engine import SearchEngine
from repro.service import (
    AnalysisService,
    AssociateRequest,
    ChainsRequest,
    ConsequencesRequest,
    ExportRequest,
    RecommendRequest,
    ServiceError,
    SimulateRequest,
    Table1Request,
    TopologyRequest,
    ValidateRequest,
    WhatIfRequest,
    canonical_json,
)

SCALE = 0.02


@pytest.fixture(scope="module")
def service():
    return AnalysisService()


@pytest.fixture(scope="module")
def reference_engine():
    return SearchEngine(build_corpus(scale=SCALE))


def test_associate_matches_direct_library_calls(service, reference_engine):
    response = service.associate(AssociateRequest(scale=SCALE))
    association = reference_engine.associate(build_centrifuge_model())
    assert response.posture.to_dict() == compute_posture(association).to_dict()
    assert response.severity_histogram == severity_histogram(association)


def test_table1_matches_attribute_table(service, reference_engine):
    response = service.table1(Table1Request(scale=SCALE))
    association = reference_engine.associate(build_centrifuge_model())
    assert response.attribute_table == association.attribute_table()


def test_whatif_defaults_to_hardened_workstation_variant(service, reference_engine):
    response = service.whatif(WhatIfRequest(scale=SCALE))
    baseline = build_centrifuge_model()
    expected = WhatIfStudy(reference_engine).compare(
        baseline, hardened_workstation_variant(baseline)
    )
    assert response.comparison.to_dict() == expected.to_dict()


def test_chains_applies_limit_and_reports_totals(service):
    unlimited = service.chains(ChainsRequest(scale=SCALE, limit=1000))
    limited = service.chains(ChainsRequest(scale=SCALE, limit=2))
    assert limited.total_chains == unlimited.total_chains
    assert len(limited.chains) == min(2, unlimited.total_chains)
    assert limited.chains == unlimited.chains[:2]
    assert limited.summary == unlimited.summary
    assert limited.summary["count"] == unlimited.total_chains


def test_topology_needs_no_engine():
    # A fresh service answers topology without ever building a corpus.
    fresh = AnalysisService()
    response = fresh.topology(TopologyRequest())
    assert not fresh._slots  # no engine slot was created
    assert response.report.system_name
    assert "Corporate Network" in response.report.attack_surface


def test_recommend_honours_per_component(service):
    many = service.recommend(RecommendRequest(scale=SCALE, per_component=3))
    few = service.recommend(RecommendRequest(scale=SCALE, per_component=1))
    assert len(few.recommendations) <= len(many.recommendations)
    assert all(r.priority > 0 for r in many.recommendations)


def test_simulate_nominal_and_attack(service):
    nominal = service.simulate(SimulateRequest(scenario="nominal", duration_s=120.0))
    assert nominal.hazard_events == []
    assert not nominal.sis_tripped
    attack = service.simulate(
        SimulateRequest(scenario="triton-like-sis-bypass", duration_s=420.0)
    )
    assert any(event["kind"] == "thermal_runaway" for event in attack.hazard_events)


def test_consequences_known_and_unknown_record(service):
    known = service.consequences(ConsequencesRequest(record="CWE-78", duration_s=120.0))
    assert known.assessments
    assert all(a.record_id == "CWE-78" for a in known.assessments)
    unknown = service.consequences(ConsequencesRequest(record="CWE-79", duration_s=120.0))
    assert unknown.assessments == ()


def test_validate_and_export(service):
    validate = service.validate(ValidateRequest())
    assert isinstance(validate.findings, tuple)
    export = service.export(ExportRequest())
    model = from_graphml_string(export.graphml)
    assert len(model) == export.component_count == len(build_centrifuge_model())


def test_model_registry_and_inline_payloads(service):
    uav = service.topology(TopologyRequest(model="uav"))
    assert uav.report.system_name != "centrifuge-scada"
    inline = build_centrifuge_model().to_dict()
    via_payload = service.topology(TopologyRequest(model=inline))
    via_default = service.topology(TopologyRequest())
    assert via_payload.to_dict() == via_default.to_dict()


def test_engines_are_warm_and_shared(service):
    first = service._engine(SCALE, "coverage")
    second = service._engine(SCALE, "coverage")
    assert first is second
    cosine = service._engine(SCALE, "cosine")
    assert cosine is not first
    # Repeated identical requests are byte-identical (warm caches are exact).
    a = service.associate(AssociateRequest(scale=SCALE))
    b = service.associate(AssociateRequest(scale=SCALE))
    assert canonical_json(a.to_dict()) == canonical_json(b.to_dict())


@pytest.mark.parametrize(
    "request_obj, code",
    [
        (AssociateRequest(scale=SCALE, model="nope"), "unknown_model"),
        (AssociateRequest(scale=SCALE, model=42), "malformed_model"),
        (AssociateRequest(scale=SCALE, model={"components": [{"bad": 1}]}), "malformed_model"),
        (AssociateRequest(scale=-1.0), "invalid_scale"),
        (AssociateRequest(scale=SCALE, scorer="bm25"), "invalid_scorer"),
        (ChainsRequest(scale=SCALE, target="No Such Component"), "unknown_component"),
        (SimulateRequest(scenario="nope"), "unknown_scenario"),
        (SimulateRequest(duration_s=-5.0), "invalid_duration"),
        (SimulateRequest(duration_s=1e15), "invalid_duration"),
        (SimulateRequest(duration_s=120.0, dt=0.0), "invalid_duration"),
        (ConsequencesRequest(duration_s=0.0), "invalid_duration"),
        (AssociateRequest(scale=SCALE, workers="many"), "invalid_workers"),
        (AssociateRequest(scale=SCALE, workers=0), "invalid_workers"),
        (ChainsRequest(scale=SCALE, max_length="six"), "invalid_max_length"),
        (ChainsRequest(scale=SCALE, limit=0), "invalid_limit"),
        (ChainsRequest(scale=SCALE, limit=-1), "invalid_limit"),
        (RecommendRequest(scale=SCALE, per_component=0), "invalid_per_component"),
    ],
)
def test_request_errors_are_typed(service, request_obj, code):
    operation = {
        "AssociateRequest": "associate",
        "ChainsRequest": "chains",
        "SimulateRequest": "simulate",
        "ConsequencesRequest": "consequences",
        "RecommendRequest": "recommend",
    }[type(request_obj).__name__]
    with pytest.raises(ServiceError) as excinfo:
        getattr(service, operation)(request_obj)
    assert excinfo.value.code == code


def test_unknown_scenario_lists_known_ones(service):
    with pytest.raises(ServiceError) as excinfo:
        service.simulate(SimulateRequest(scenario="nope"))
    assert "triton-like-sis-bypass" in excinfo.value.details["known_scenarios"]


def test_workspace_artifact_is_built_then_reloaded(tmp_path, capsys):
    path = tmp_path / "ws.cpsecws"
    first = AnalysisService(workspace=path)
    reference = first.associate(AssociateRequest(scale=SCALE))
    assert path.exists()
    second = AnalysisService(workspace=path)
    reloaded = second.associate(AssociateRequest(scale=SCALE))
    assert canonical_json(reloaded.to_dict()) == canonical_json(reference.to_dict())
    # The artifact served the request: no in-memory scale slot was built.
    assert second._artifact is not None
    assert not second._slots


def test_mismatched_workspace_artifact_is_rebuilt(tmp_path, capsys):
    path = tmp_path / "ws.cpsecws"
    AnalysisService(workspace=path).associate(AssociateRequest(scale=SCALE))
    service = AnalysisService(workspace=path)
    service.associate(AssociateRequest(scale=0.03))
    err = capsys.readouterr().err
    assert "ignoring workspace artifact built with different parameters" in err
    # The artifact now matches the new scale and reloads cleanly.
    third = AnalysisService(workspace=path)
    third.associate(AssociateRequest(scale=0.03))
    assert "ignoring" not in capsys.readouterr().err


def test_server_mode_does_not_overwrite_artifact(tmp_path):
    path = tmp_path / "ws.cpsecws"
    AnalysisService(workspace=path).associate(AssociateRequest(scale=SCALE))
    stamp = path.read_bytes()
    server_side = AnalysisService(workspace=path, save_artifacts=False)
    server_side.associate(AssociateRequest(scale=0.03))
    assert path.read_bytes() == stamp  # odd-scale request built in memory
    assert 0.03 in server_side._slots


def test_snapshot_path_is_used_and_rebuilt(tmp_path, capsys):
    snapshot = tmp_path / "index.json"
    first = AnalysisService(snapshot=snapshot)
    reference = first.associate(AssociateRequest(scale=SCALE))
    assert snapshot.exists()
    second = AnalysisService(snapshot=snapshot)
    reloaded = second.associate(AssociateRequest(scale=SCALE))
    assert canonical_json(reloaded.to_dict()) == canonical_json(reference.to_dict())
    assert "ignoring stale" not in capsys.readouterr().err
    # A different scale invalidates the fingerprint and rebuilds.
    AnalysisService(snapshot=snapshot).associate(AssociateRequest(scale=0.03))
    assert "ignoring stale index snapshot" in capsys.readouterr().err


def test_snapshot_is_ignored_when_workspace_given(tmp_path, capsys):
    AnalysisService(workspace=tmp_path / "ws.bin", snapshot=tmp_path / "index.json")
    assert "--snapshot is ignored" in capsys.readouterr().err


def test_response_cache_serves_equal_isolated_copies(service):
    request = AssociateRequest(scale=SCALE)
    first = service.associate(request)
    second = service.associate(request)
    assert first == second
    assert first is not second  # each caller owns its copy...
    first.severity_histogram.clear()  # ...so mutation cannot poison the cache
    assert service.associate(request) == second
    assert service.health()["response_cache"]["entries"] >= 1


def test_disabled_response_cache_still_returns_identical_bytes():
    cached = AnalysisService()
    uncached = AnalysisService(max_response_cache_entries=0)
    request = AssociateRequest(scale=SCALE)
    a = cached.associate(request)
    b = uncached.associate(request)
    c = uncached.associate(request)
    assert b is not c  # recomputed every time...
    assert canonical_json(a.to_dict()) == canonical_json(b.to_dict())
    assert canonical_json(b.to_dict()) == canonical_json(c.to_dict())


def test_scale_bound_is_a_server_guard_not_a_cli_limit():
    # The shared-server default rejects huge scales with a typed error...
    with pytest.raises(ServiceError) as excinfo:
        AnalysisService().associate(AssociateRequest(scale=100.0))
    assert excinfo.value.code == "invalid_scale"
    # ...but the CLI's in-process backend (max_scale=None) only requires
    # positivity, so local users keep their freedom.
    unbounded = AnalysisService(max_scale=None)
    assert unbounded._check_scale(100.0) == 100.0
    with pytest.raises(ServiceError):
        unbounded._check_scale(0.0)


def test_scale_slots_are_lru_bounded():
    from repro.service.service import MAX_SCALE_SLOTS

    service = AnalysisService(max_response_cache_entries=0)
    # Touch more distinct scales than the bound; all must answer correctly
    # while the slot map stays bounded (LRU evicted, not accumulated).
    scales = [0.01 + 0.005 * step for step in range(MAX_SCALE_SLOTS + 2)]
    for scale in scales:
        service.topology(TopologyRequest())  # no slot
        service.table1(Table1Request(scale=scale))
    assert len(service._slots) == MAX_SCALE_SLOTS
    assert list(service._slots) == scales[-MAX_SCALE_SLOTS:]


def test_health_reports_warm_engines(service):
    service.associate(AssociateRequest(scale=SCALE))
    payload = service.health()
    assert payload["status"] == "ok"
    assert "associate" in payload["operations"]
    assert "centrifuge" in payload["models"]
    scales = {engine["scale"] for engine in payload["engines"]}
    assert SCALE in scales
    for engine in payload["engines"]:
        assert engine["stats"]["components_scored"] >= 0
        assert "attribute_entries" in engine["cache_info"]

"""Tests for the inverted index."""

import pytest

from repro.search.index import InvertedIndex


def build_index() -> InvertedIndex:
    index = InvertedIndex()
    index.add_documents(
        [
            ("d1", "buffer overflow in the Linux kernel network stack"),
            ("d2", "cross-site scripting in a web management interface"),
            ("d3", "Linux kernel use after free in the scheduler"),
        ]
    )
    return index


def test_len_and_contains():
    index = build_index()
    assert len(index) == 3
    assert "d1" in index
    assert "missing" not in index
    assert index.vocabulary_size > 5


def test_duplicate_document_rejected():
    index = build_index()
    with pytest.raises(ValueError):
        index.add_document("d1", "again")


def test_document_frequency_and_postings():
    index = build_index()
    assert index.document_frequency("linux") == 2
    assert index.document_frequency("kernel") == 2
    # Tokens are stored normalized; "scripting" is indexed as its stem.
    assert index.document_frequency("script") == 1
    assert index.document_frequency("scripting") == 0
    assert index.document_frequency("nonexistent") == 0
    postings = index.postings("linux")
    assert {p.doc_id for p in postings} == {"d1", "d3"}


def test_document_length():
    index = build_index()
    assert index.document_length("d1") > 0
    with pytest.raises(KeyError):
        index.document_length("missing")


def test_document_ids_order():
    index = build_index()
    assert index.document_ids() == ("d1", "d2", "d3")


def test_candidates_restrict_to_shared_tokens():
    index = build_index()
    candidates = index.candidates(["linux", "kernel"])
    assert set(candidates) == {"d1", "d3"}
    assert candidates["d1"]["linux"] == 1
    # Tokens absent from the query are not reported.
    assert "buffer" not in candidates["d1"]


def test_candidates_with_unseen_token_is_empty():
    index = build_index()
    assert index.candidates(["zzzz"]) == {}


def test_term_frequency_recorded():
    index = InvertedIndex()
    index.add_document("d", "linux linux kernel")
    posting = index.postings("linux")[0]
    assert posting.term_frequency == 2


def test_tokens_iterates_full_vocabulary():
    index = build_index()
    tokens = list(index.tokens())
    assert len(tokens) == index.vocabulary_size
    assert "linux" in tokens and "kernel" in tokens
    assert all(index.document_frequency(token) > 0 for token in tokens)


def test_revision_increments_per_document():
    index = InvertedIndex()
    assert index.revision == 0
    index.add_document("a", "one text")
    index.add_document("b", "another text")
    assert index.revision == 2


def test_snapshot_round_trip_preserves_everything():
    index = build_index()
    restored = InvertedIndex.from_dict(index.to_dict())
    assert restored.document_ids() == index.document_ids()
    assert restored.vocabulary_size == index.vocabulary_size
    assert list(restored.tokens()) == list(index.tokens())
    for token in index.tokens():
        assert restored.postings(token) == index.postings(token)
    for doc_id in index.document_ids():
        assert restored.document_length(doc_id) == index.document_length(doc_id)


def test_snapshot_is_json_serializable():
    import json

    index = build_index()
    payload = json.loads(json.dumps(index.to_dict()))
    restored = InvertedIndex.from_dict(payload)
    assert restored.document_ids() == index.document_ids()

"""Tests for the inverted index."""

import pytest

from repro.search.index import InvertedIndex


def build_index() -> InvertedIndex:
    index = InvertedIndex()
    index.add_documents(
        [
            ("d1", "buffer overflow in the Linux kernel network stack"),
            ("d2", "cross-site scripting in a web management interface"),
            ("d3", "Linux kernel use after free in the scheduler"),
        ]
    )
    return index


def test_len_and_contains():
    index = build_index()
    assert len(index) == 3
    assert "d1" in index
    assert "missing" not in index
    assert index.vocabulary_size > 5


def test_duplicate_document_rejected():
    index = build_index()
    with pytest.raises(ValueError):
        index.add_document("d1", "again")


def test_document_frequency_and_postings():
    index = build_index()
    assert index.document_frequency("linux") == 2
    assert index.document_frequency("kernel") == 2
    # Tokens are stored normalized; "scripting" is indexed as its stem.
    assert index.document_frequency("script") == 1
    assert index.document_frequency("scripting") == 0
    assert index.document_frequency("nonexistent") == 0
    postings = index.postings("linux")
    assert {p.doc_id for p in postings} == {"d1", "d3"}


def test_document_length():
    index = build_index()
    assert index.document_length("d1") > 0
    with pytest.raises(KeyError):
        index.document_length("missing")


def test_document_ids_order():
    index = build_index()
    assert index.document_ids() == ("d1", "d2", "d3")


def test_candidates_restrict_to_shared_tokens():
    index = build_index()
    candidates = index.candidates(["linux", "kernel"])
    assert set(candidates) == {"d1", "d3"}
    assert candidates["d1"]["linux"] == 1
    # Tokens absent from the query are not reported.
    assert "buffer" not in candidates["d1"]


def test_candidates_with_unseen_token_is_empty():
    index = build_index()
    assert index.candidates(["zzzz"]) == {}


def test_term_frequency_recorded():
    index = InvertedIndex()
    index.add_document("d", "linux linux kernel")
    posting = index.postings("linux")[0]
    assert posting.term_frequency == 2

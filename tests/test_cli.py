"""Tests for the cpsec command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_export_and_validate(tmp_path, capsys):
    output = tmp_path / "model.graphml"
    assert main(["export", "--output", str(output)]) == 0
    assert output.exists()
    captured = capsys.readouterr()
    assert "wrote" in captured.out

    assert main(["validate", "--model", str(output)]) == 0


def test_validate_builtin_model(capsys):
    assert main(["validate"]) == 0
    # The built-in model produces at most informational findings.
    out = capsys.readouterr().out
    assert "error" not in out.lower() or "clean" in out.lower()


def test_table1_command(capsys):
    assert main(["table1", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "Cisco ASA" in out
    assert "Vulnerabilities" in out


def test_associate_command(capsys):
    assert main(["associate", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "posture index" in out.lower()


def test_whatif_command(capsys):
    assert main(["whatif", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "Verdict" in out


def test_simulate_nominal(capsys):
    assert main(["simulate", "--scenario", "nominal", "--duration", "120"]) == 0
    out = capsys.readouterr().out
    assert "no hazard conditions reached" in out


def test_simulate_triton_scenario(capsys):
    assert main(["simulate", "--scenario", "triton-like-sis-bypass", "--duration", "420"]) == 0
    out = capsys.readouterr().out
    assert "thermal_runaway" in out


def test_simulate_unknown_scenario_lists_options(capsys):
    assert main(["simulate", "--scenario", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario" in err
    assert "triton-like-sis-bypass" in err


def test_chains_command(capsys):
    assert main(["chains", "--scale", "0.02", "--target", "BPCS Platform", "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "Corporate Network" in out
    assert "summary:" in out


def test_chains_command_unreachable_target(tmp_path, capsys):
    # A model whose target has no associated vectors yields no chains.
    assert main(["chains", "--scale", "0.02", "--target", "Centrifuge", "--max-length", "1"]) == 1
    out = capsys.readouterr().out
    assert "no exploit chains" in out


def test_topology_command(capsys):
    assert main(["topology"]) == 0
    out = capsys.readouterr().out
    assert "Betweenness" in out
    assert "attack surface: Corporate Network" in out
    assert "Control Firewall" in out


def test_recommend_command(capsys):
    assert main(["recommend", "--scale", "0.02", "--per-component", "2"]) == 0
    out = capsys.readouterr().out
    assert "CWE-" in out
    assert "what-if to evaluate" in out


def test_consequences_command(capsys):
    assert main(["consequences", "--record", "CWE-78", "--component", "BPCS Platform",
                 "--duration", "300"]) == 0
    out = capsys.readouterr().out
    assert "CWE-78" in out
    assert "Scenario" in out


def test_consequences_unknown_record(capsys):
    assert main(["consequences", "--record", "CWE-79", "--duration", "120"]) == 1
    out = capsys.readouterr().out
    assert "no executable scenario" in out


def test_associate_with_snapshot_saves_then_loads(tmp_path, capsys):
    snapshot = tmp_path / "index.json"
    assert main(["associate", "--scale", "0.02", "--snapshot", str(snapshot)]) == 0
    first = capsys.readouterr().out
    assert snapshot.exists()
    # Second run loads the snapshot and must print the identical report.
    assert main(["associate", "--scale", "0.02", "--snapshot", str(snapshot)]) == 0
    second = capsys.readouterr().out
    assert second == first


def test_stale_snapshot_is_rebuilt(tmp_path, capsys):
    snapshot = tmp_path / "index.json"
    assert main(["associate", "--scale", "0.02", "--snapshot", str(snapshot)]) == 0
    reference = capsys.readouterr().out
    # Re-using the snapshot at a different corpus scale must not poison the
    # results: the mismatch is detected and the index rebuilt.
    assert main(["associate", "--scale", "0.03", "--snapshot", str(snapshot)]) == 0
    captured = capsys.readouterr()
    assert "ignoring stale index snapshot" in captured.err
    assert captured.out != reference
    # The rebuilt snapshot now matches scale 0.03 and loads cleanly.
    assert main(["associate", "--scale", "0.03", "--snapshot", str(snapshot)]) == 0
    assert "ignoring stale" not in capsys.readouterr().err


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert out.startswith("cpsec ")


def test_missing_model_file_exits_2(capsys):
    assert main(["associate", "--scale", "0.02", "--model", "/no/such/model.graphml"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("cpsec: cannot read model")
    assert "Traceback" not in err


def test_corrupt_model_file_exits_2(tmp_path, capsys):
    path = tmp_path / "bad.graphml"
    path.write_text("this is not xml", encoding="utf-8")
    assert main(["validate", "--model", str(path)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("cpsec: cannot read model")


def test_negative_simulation_duration_exits_2(capsys):
    assert main(["simulate", "--duration", "-5"]) == 2
    err = capsys.readouterr().err
    assert "duration_s" in err
    assert "Traceback" not in err


def test_serve_missing_workspace_exits_2(tmp_path, capsys):
    assert main(["serve", "--workspace", str(tmp_path / "none.cpsecws")]) == 2
    err = capsys.readouterr().err
    assert "workspace artifact not found" in err


def test_serve_corrupt_workspace_exits_2(tmp_path, capsys):
    path = tmp_path / "corrupt.cpsecws"
    path.write_bytes(b"garbage bytes, not an artifact")
    assert main(["serve", "--workspace", str(path)]) == 2
    err = capsys.readouterr().err
    assert "cannot load workspace artifact" in err


def test_associate_with_workspace_saves_then_loads(tmp_path, capsys):
    workspace = tmp_path / "ws.cpsecws"
    assert main(["associate", "--scale", "0.02", "--workspace", str(workspace)]) == 0
    first = capsys.readouterr().out
    assert workspace.exists()
    # Second run loads the artifact and must print the identical report.
    assert main(["associate", "--scale", "0.02", "--workspace", str(workspace)]) == 0
    second = capsys.readouterr().out
    assert second == first


def test_snapshot_pointing_at_directory_degrades_gracefully(tmp_path, capsys):
    # A directory is unreadable as a snapshot and unwritable as one; both
    # failures must warn and fall back to an in-memory engine, not crash.
    assert main(["associate", "--scale", "0.02", "--snapshot", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "posture index" in captured.out.lower()
    assert "ignoring stale index snapshot" in captured.err
    assert "could not write index snapshot" in captured.err

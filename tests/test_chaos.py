"""Chaos suite: injected faults against every resilience mechanism.

The fault-injection seam (:mod:`repro.faults`) lets these tests arm real
failures at real production seams -- journal writes, artifact loads,
operation dispatch, handler entry -- and assert the typed, observable
recovery the resilience tier promises:

* a journal I/O error degrades the manager (flagged, counted, ``/healthz``
  says ``degraded``) instead of killing worker threads,
* a transient (5xx) job failure retries with jittered exponential backoff
  on the injected clock -- fake-clock-verified, journal-replayable -- and
  dead-letters when the budget is spent,
* a slow request overruns its deadline budget into a typed 504 with span
  timings,
* a saturated server sheds load with a typed 503 carrying ``retry_after_s``
  while ``/healthz`` keeps answering,
* the client re-offers idempotent requests and trips its circuit breaker,
* and with nothing armed, the instrumented paths stay byte-identical.
"""

import http.client
import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

from helpers_jobs import (
    SLOW_SIMULATE,
    GateService,
    ScriptedService,
    stepped_manager,
)
from repro import faults
from repro.jobs import JobManager
from repro.jobs.store import read_journal
from repro.service import (
    AnalysisService,
    CircuitBreaker,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    start_server,
)
from repro.service.protocol import DEADLINE_HEADER

SCALE = 0.02


@pytest.fixture(autouse=True)
def _clean_seam():
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def service():
    return AnalysisService()


def _serve(service, **kwargs):
    server = start_server(service, port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, thread, f"http://{host}:{port}"


def _stop(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _post(url, path, payload, headers=None):
    """POST returning ``(status, payload, headers)`` without raising."""
    request = urllib.request.Request(
        f"{url}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def _expected_delay(job_id: str, attempt: int, backoff_s: float) -> float:
    """The manager's deterministic jittered backoff, recomputed."""
    base = backoff_s * (2.0 ** (attempt - 1))
    jitter = 0.5 + random.Random(f"{job_id}:{attempt}").random()
    return min(300.0, base * jitter)


def _flaky(failures: int, status: int = 503):
    """A scripted operation failing ``failures`` times, then succeeding."""
    calls = {"n": 0}

    def behavior(request):
        calls["n"] += 1
        if calls["n"] <= failures:
            return ServiceError(
                f"backend hiccup #{calls['n']}", code="transient", status=status
            )
        return {"ok": True, "after_failures": failures}

    return behavior


# -- graceful degradation: journal faults -----------------------------------


def test_journal_error_degrades_manager_but_jobs_keep_running(tmp_path):
    manager, _ = stepped_manager(
        ScriptedService(), journal_path=tmp_path / "jobs.jsonl"
    )
    try:
        faults.arm("journal.append", "error", arg=OSError("disk full"))
        job = manager.submit("associate", {"scale": SCALE})
        assert manager.run_next() is job
        assert job.state == "succeeded"
        stats = manager.stats()
        assert stats["journal_degraded"] is True
        assert stats["journal_errors"] >= 1
        assert "disk full" in stats["journal_error"]
        # Degraded mode is sticky and quiet: later jobs run without touching
        # the dead journal (and without tripping the still-armed fault).
        tripped = faults.trips("journal.append")
        next_job = manager.submit("table1", {"scale": SCALE})
        assert manager.run_next() is next_job
        assert next_job.state == "succeeded"
        assert faults.trips("journal.append") == tripped
    finally:
        manager.close(timeout=1)


def test_torn_journal_write_degrades_and_replay_heals(tmp_path):
    journal = tmp_path / "jobs.jsonl"
    manager, _ = stepped_manager(ScriptedService(), journal_path=journal)
    first = manager.submit("associate", {"scale": SCALE})
    manager.run_next()
    assert first.state == "succeeded"
    # The next submission's journal line is torn mid-write: a truncated
    # prefix with no newline lands, then the write errors.
    faults.arm("journal.torn", "torn", times=1)
    second = manager.submit("associate", {"scale": SCALE})
    assert manager.stats()["journal_degraded"] is True
    manager.run_next()
    assert second.state == "succeeded"
    manager.close(timeout=1)

    replayed = JobManager(ScriptedService(), journal_path=journal, start_workers=False)
    try:
        records = {job.job_id: job for job in replayed.jobs()}
        # The intact history replays; the torn line was skipped, so the
        # second job is simply absent -- a torn tail never poisons replay.
        assert records[first.job_id].state == "succeeded"
        assert second.job_id not in records
        assert replayed.stats()["journal_degraded"] is False
    finally:
        replayed.close(timeout=1)


def test_degraded_journal_surfaces_in_healthz_and_metrics(tmp_path, service):
    manager = JobManager(
        ScriptedService(), journal_path=tmp_path / "jobs.jsonl", workers=1
    )
    server, thread, url = _serve(service, jobs=manager)
    try:
        faults.arm("journal.append", "error", arg=OSError("read-only filesystem"))
        status, job, _ = _post(
            url, "/v1/jobs", {"operation": "associate", "request": {"scale": SCALE}}
        )
        assert status == 202
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            with urllib.request.urlopen(
                f"{url}/v1/jobs/{job['job_id']}", timeout=30
            ) as response:
                record = json.loads(response.read())
            if record.get("state") in ("succeeded", "failed", "cancelled"):
                break
            time.sleep(0.05)
        assert record["state"] == "succeeded"
        with urllib.request.urlopen(f"{url}/healthz", timeout=30) as response:
            payload = json.loads(response.read())
        assert payload["status"] == "degraded"
        assert payload["jobs"]["journal_degraded"] is True
        assert payload["jobs"]["journal_errors"] >= 1
        with urllib.request.urlopen(f"{url}/metrics", timeout=30) as response:
            text = response.read().decode("utf-8")
        degraded = [
            line
            for line in text.splitlines()
            if line.startswith("cpsec_journal_degraded")
        ]
        assert degraded and all(line.split()[-1] == "1" for line in degraded)
    finally:
        _stop(server, thread)
        manager.close(timeout=1)


# -- job retries with backoff on the fake clock -----------------------------


def test_transient_job_failure_retries_with_exact_backoff(tmp_path):
    journal = tmp_path / "jobs.jsonl"
    manager, clock = stepped_manager(
        ScriptedService({"associate": _flaky(failures=2)}), journal_path=journal
    )
    job = manager.submit(
        "associate", {"scale": SCALE}, max_retries=3, backoff_s=2.0
    )
    assert manager.run_next() is job  # attempt 1 fails
    assert job.state == "queued"
    assert job.attempt == 1
    expected = _expected_delay(job.job_id, 1, 2.0)
    assert job.retry_at == pytest.approx(expected)
    assert manager.run_next() is None  # backoff not elapsed: nothing ready
    assert manager.stats()["retries"] == {"total": 1, "pending": 1}

    clock.advance(expected + 0.001)
    assert manager.run_next() is job  # attempt 2 fails
    assert job.attempt == 2
    second = _expected_delay(job.job_id, 2, 2.0)
    assert job.retry_at - clock.monotonic() == pytest.approx(second)
    clock.advance(second + 0.001)
    assert manager.run_next() is job  # third attempt succeeds
    assert job.state == "succeeded"
    assert job.result["after_failures"] == 2

    stats = manager.stats()
    assert stats["retries"] == {"total": 2, "pending": 0}
    assert stats["dead_letter"]["count"] == 0
    record = job.to_dict()
    assert record["attempt"] == 2
    assert record["max_retries"] == 3
    assert record["dead_letter"] is False

    retry_lines = [
        entry for entry in read_journal(journal) if entry["kind"] == "retry"
    ]
    assert [entry["attempt"] for entry in retry_lines] == [1, 2]
    assert retry_lines[0]["delay_s"] == pytest.approx(expected, abs=1e-5)
    assert retry_lines[0]["error"]["status"] == 503
    manager.close(timeout=1)

    replayed = JobManager(
        ScriptedService(), journal_path=journal, start_workers=False
    )
    try:
        record = replayed.get(job.job_id).to_dict()
        assert record["state"] == "succeeded"
        assert record["attempt"] == 2
        assert record["dead_letter"] is False
    finally:
        replayed.close(timeout=1)


def test_exhausted_retry_budget_dead_letters(tmp_path):
    manager, clock = stepped_manager(
        ScriptedService({"associate": _flaky(failures=10)}),
        journal_path=tmp_path / "jobs.jsonl",
    )
    try:
        job = manager.submit("associate", {"scale": SCALE}, max_retries=1)
        manager.run_next()
        assert job.state == "queued" and job.attempt == 1
        clock.advance(301.0)  # past any capped backoff
        manager.run_next()
        assert job.state == "failed"
        assert job.error["code"] == "transient"
        stats = manager.stats()
        assert stats["dead_letter"] == {"count": 1, "job_ids": [job.job_id]}
        assert job.to_dict()["dead_letter"] is True
    finally:
        manager.close(timeout=1)


def test_non_retryable_4xx_fails_without_retrying():
    manager, _ = stepped_manager(
        ScriptedService(
            {"associate": ServiceError("bad request", code="nope", status=400)}
        )
    )
    try:
        job = manager.submit("associate", {"scale": SCALE}, max_retries=3)
        manager.run_next()
        # 4xx is deterministic: retrying replays the same rejection.
        assert job.state == "failed"
        assert job.attempt == 0
        assert manager.stats()["retries"]["total"] == 0
    finally:
        manager.close(timeout=1)


def test_no_retries_by_default_on_transient_failure():
    manager, _ = stepped_manager(
        ScriptedService({"associate": _flaky(failures=1)})
    )
    try:
        job = manager.submit("associate", {"scale": SCALE})
        manager.run_next()
        assert job.state == "failed"
        assert job.to_dict()["dead_letter"] is False
    finally:
        manager.close(timeout=1)


def test_cancel_during_retry_backoff_wins(tmp_path):
    manager, clock = stepped_manager(
        ScriptedService({"associate": _flaky(failures=10)}),
        journal_path=tmp_path / "jobs.jsonl",
    )
    try:
        job = manager.submit("associate", {"scale": SCALE}, max_retries=5)
        manager.run_next()
        assert job.state == "queued" and job.retry_at is not None
        manager.cancel(job.job_id)
        assert job.state == "cancelled"
        clock.advance(400.0)
        # The stale heap entry is skipped lazily; the job never re-runs.
        assert manager.run_next() is None
        assert job.state == "cancelled"
        assert manager.stats()["retries"]["pending"] == 0
    finally:
        manager.close(timeout=1)


def test_submit_validates_retry_knobs():
    manager, _ = stepped_manager()
    try:
        with pytest.raises(ServiceError) as excinfo:
            manager.submit("associate", {"scale": SCALE}, max_retries=99)
        assert excinfo.value.code == "invalid_max_retries"
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            manager.submit("associate", {"scale": SCALE}, backoff_s=-1.0)
        assert excinfo.value.code == "invalid_backoff"
    finally:
        manager.close(timeout=1)


def test_transient_op_fault_injected_at_service_seam_retries(tmp_path):
    """End-to-end tentpole check: an armed ``op.<name>`` fault, a real
    AnalysisService, and the retry machinery heal a transient failure."""
    manager, clock = stepped_manager(
        AnalysisService(), journal_path=tmp_path / "jobs.jsonl"
    )
    try:
        faults.arm("op.topology", "error", times=1)
        job = manager.submit("topology", {}, max_retries=2, backoff_s=0.1)
        manager.run_next()
        assert job.state == "queued" and job.attempt == 1
        assert faults.trips("op.topology") == 1
        clock.advance(1.0)
        manager.run_next()
        assert job.state == "succeeded"
    finally:
        manager.close(timeout=1)


# -- request deadlines -------------------------------------------------------


def test_deadline_header_turns_slow_request_into_typed_504(service):
    server, thread, url = _serve(service)
    try:
        status, payload, _ = _post(
            url,
            "/v1/simulate",
            {"scenario": "nominal", "duration_s": 86400.0, "dt": 0.5},
            headers={DEADLINE_HEADER: "80"},
        )
        assert status == 504
        error = payload["error"]
        assert error["code"] == "deadline_exceeded"
        assert error["details"]["budget_ms"] == 80.0
        assert error["details"]["elapsed_ms"] >= 80.0
        assert isinstance(error["details"]["spans"], list)
    finally:
        _stop(server, thread)


def test_server_wide_request_timeout_applies_without_header(service):
    server, thread, url = _serve(service, request_timeout_ms=80.0)
    try:
        status, payload, _ = _post(
            url, "/v1/simulate", {"scenario": "nominal", "duration_s": 86400.0, "dt": 0.5}
        )
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"
        # A client header can only tighten the server budget, never widen it.
        started = time.monotonic()
        status, payload, _ = _post(
            url,
            "/v1/simulate",
            {"scenario": "nominal", "duration_s": 86400.0, "dt": 0.5},
            headers={DEADLINE_HEADER: "3600000"},
        )
        assert status == 504
        assert payload["error"]["details"]["budget_ms"] == 80.0
        assert time.monotonic() - started < 60.0
    finally:
        _stop(server, thread)


def test_generous_deadline_leaves_fast_requests_untouched(service):
    server, thread, url = _serve(service)
    try:
        status, reference, _ = _post(url, "/v1/topology", {})
        assert status == 200
        status, under_deadline, _ = _post(
            url, "/v1/topology", {}, headers={DEADLINE_HEADER: "60000"}
        )
        assert status == 200
        assert under_deadline == reference
    finally:
        _stop(server, thread)


def test_malformed_deadline_header_is_typed_400(service):
    server, thread, url = _serve(service)
    try:
        for bad in ("soon", "-5", "0", "nan"):
            status, payload, _ = _post(
                url, "/v1/topology", {}, headers={DEADLINE_HEADER: bad}
            )
            assert status == 400, bad
            assert payload["error"]["code"] == "malformed_deadline"
    finally:
        _stop(server, thread)


def test_client_deadline_ms_stamps_the_header(service):
    server, thread, url = _serve(service)
    try:
        client = ServiceClient(url, deadline_ms=80.0)
        with pytest.raises(ServiceError) as excinfo:
            client.call_raw(
                "simulate", {"scenario": "nominal", "duration_s": 86400.0, "dt": 0.5}
            )
        assert excinfo.value.status == 504
        assert excinfo.value.code == "deadline_exceeded"
    finally:
        _stop(server, thread)


# -- overload shedding -------------------------------------------------------


def test_saturated_server_sheds_with_retry_after_and_healthz_answers():
    gate = GateService(AnalysisService())
    server, thread, url = _serve(gate, max_inflight=1)
    results = {}

    def occupy():
        results["slow"] = _post(url, "/v1/simulate", SLOW_SIMULATE)

    worker = threading.Thread(target=occupy, daemon=True)
    worker.start()
    try:
        gate.wait_started()
        status, payload, headers = _post(url, "/v1/topology", {})
        assert status == 503
        error = payload["error"]
        assert error["code"] == "overloaded"
        assert error["details"]["max_inflight"] == 1
        assert error["details"]["retry_after_s"] == 1.0
        assert headers["Retry-After"] == "1"
        # GETs are exempt: the health/metrics plane answers while shedding.
        with urllib.request.urlopen(f"{url}/healthz", timeout=30) as response:
            assert response.status == 200
    finally:
        gate.release()
        worker.join(timeout=120)
        _stop(server, thread)
    assert results["slow"][0] == 200


def test_shedding_recovers_once_the_slot_frees():
    gate = GateService(AnalysisService())
    server, thread, url = _serve(gate, max_inflight=1)
    results = {}

    def occupy():
        results["slow"] = _post(url, "/v1/simulate", SLOW_SIMULATE)

    worker = threading.Thread(target=occupy, daemon=True)
    worker.start()
    try:
        gate.wait_started()
        assert _post(url, "/v1/topology", {})[0] == 503
        gate.release()
        worker.join(timeout=120)
        status, _, _ = _post(url, "/v1/topology", {})
        assert status == 200
    finally:
        gate.release()
        _stop(server, thread)


# -- handler crash boundary and workspace-load faults ------------------------


def test_injected_handler_exception_is_typed_500_and_server_survives(service):
    server, thread, url = _serve(service)
    try:
        faults.arm("handler.crash", "runtimeerror", times=1)
        status, payload, _ = _post(url, "/v1/topology", {})
        assert status == 500
        assert payload["error"]["code"] == "internal_error"
        # One poisoned request, not a poisoned server.
        assert _post(url, "/v1/topology", {})[0] == 200
    finally:
        _stop(server, thread)


def test_workspace_artifact_load_fault_is_typed_and_recoverable(tmp_path):
    from repro.workspace import Workspace

    path = tmp_path / "ws.cpsecws"
    Workspace.build(scale=SCALE).save(path)
    service = AnalysisService(workspaces={"ws": path})
    faults.arm("artifact.load", "error", arg=OSError("truncated artifact"), times=1)
    from repro.service import AssociateRequest

    with pytest.raises(ServiceError) as excinfo:
        service.associate(AssociateRequest(scale=SCALE, workspace="ws"))
    assert excinfo.value.code == "workspace_load_failed"
    assert excinfo.value.status == 503
    assert excinfo.value.details == {"workspace": "ws", "recoverable": True}
    # The entry was not poisoned: the next request retries the load and wins.
    response = service.associate(AssociateRequest(scale=SCALE, workspace="ws"))
    assert response.to_dict()["schema_version"] == 1


def test_disarmed_seam_leaves_responses_byte_identical(service):
    server, thread, url = _serve(service)
    try:
        body = json.dumps({}).encode("utf-8")

        def fetch():
            request = urllib.request.Request(
                f"{url}/v1/topology",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.read()

        reference = fetch()
        # Arming an unrelated point must not perturb this path either.
        faults.arm("journal.append", "error")
        assert fetch() == reference
        faults.reset()
        assert fetch() == reference
    finally:
        _stop(server, thread)


# -- client resilience -------------------------------------------------------


class _ScriptedTransport(ServiceClient):
    """A ServiceClient whose transport is a scripted outcome list."""

    def __init__(self, outcomes, **kwargs):
        kwargs.setdefault("sleep", lambda s: self.sleeps.append(s))
        self.sleeps: list[float] = []
        super().__init__("http://127.0.0.1:9", **kwargs)
        self._outcomes = list(outcomes)
        self.attempts = 0

    def _request_once(self, method, path, body):
        self.attempts += 1
        outcome = self._outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _overloaded():
    return ServiceError(
        "at capacity",
        code="overloaded",
        status=503,
        details={"retry_after_s": 2.5},
    )


def test_client_retry_honors_server_retry_after():
    client = _ScriptedTransport(
        [_overloaded(), b'{"nodes": []}'], retry=RetryPolicy(retries=2)
    )
    assert client.call_raw("topology", {}) == b'{"nodes": []}'
    assert client.attempts == 2
    assert client.sleeps == [2.5]


def test_client_retry_uses_jittered_backoff_without_retry_after():
    policy = RetryPolicy(retries=3, backoff_s=1.0, max_backoff_s=4.0)
    client = _ScriptedTransport(
        [
            ServiceError("down", code="unreachable", status=503),
            ServiceError("down", code="unreachable", status=503),
            b"ok",
        ],
        retry=policy,
    )
    assert client.call_raw("topology", {}) == b"ok"
    assert client.attempts == 3
    assert 0.5 <= client.sleeps[0] < 1.5  # base 1.0, jitter [0.5, 1.5)
    assert 1.0 <= client.sleeps[1] < 3.0  # base 2.0


def test_client_never_retries_mutating_operations_or_submissions():
    client = _ScriptedTransport([_overloaded()], retry=RetryPolicy())
    with pytest.raises(ServiceError):
        client.call_raw("extend", {"records": []})
    assert client.attempts == 1

    client = _ScriptedTransport([_overloaded()], retry=RetryPolicy())
    with pytest.raises(ServiceError):
        client.submit("associate", {"scale": SCALE})
    assert client.attempts == 1
    assert client.sleeps == []


def test_client_never_retries_deadline_exceeded():
    client = _ScriptedTransport(
        [ServiceError("too slow", code="deadline_exceeded", status=504)],
        retry=RetryPolicy(),
    )
    with pytest.raises(ServiceError) as excinfo:
        client.call_raw("topology", {})
    assert excinfo.value.code == "deadline_exceeded"
    assert client.attempts == 1


def test_client_retry_is_off_by_default():
    client = _ScriptedTransport([_overloaded()])
    with pytest.raises(ServiceError):
        client.call_raw("topology", {})
    assert client.attempts == 1


def test_circuit_breaker_state_machine():
    now = {"t": 0.0}
    breaker = CircuitBreaker(
        failure_threshold=2, cooldown_s=30.0, monotonic=lambda: now["t"]
    )
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.allow() is False
    now["t"] = 31.0
    assert breaker.state == "half_open"
    assert breaker.allow() is True  # the single probe
    assert breaker.allow() is False  # no second concurrent probe
    breaker.record_failure()  # failed probe: re-open for a fresh cooldown
    assert breaker.state == "open"
    now["t"] = 62.0
    assert breaker.allow() is True
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow() is True


def test_client_fails_fast_while_breaker_is_open():
    breaker = CircuitBreaker(failure_threshold=1, cooldown_s=30.0)
    client = _ScriptedTransport(
        [ServiceError("down", code="unreachable", status=503)], breaker=breaker
    )
    with pytest.raises(ServiceError) as excinfo:
        client.call_raw("topology", {})
    assert excinfo.value.code == "unreachable"
    assert breaker.state == "open"
    with pytest.raises(ServiceError) as excinfo:
        client.call_raw("topology", {})
    assert excinfo.value.code == "circuit_open"
    assert excinfo.value.status == 503
    assert excinfo.value.details["cooldown_s"] == 30.0
    assert client.attempts == 1  # the transport was never touched again


# -- pre-forked crash restart under injected handler crashes -----------------


@pytest.mark.slow
def test_preforked_workers_survive_injected_handler_crashes(tmp_path):
    """Armed via CPSEC_FAULTS, every worker's first POST dies with os._exit;
    the parent restarts the slot each time and the GET plane (exempt from
    the handler.crash point) keeps answering throughout."""
    import os
    import re
    import signal
    import subprocess
    import sys
    from pathlib import Path

    from repro.workspace import Workspace

    artifact = tmp_path / "chaos.cpsecws"
    Workspace.build(scale=SCALE).save(artifact)

    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = repo_src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["CPSEC_FAULTS"] = "handler.crash:exit:13:1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--workspace", f"main={artifact}",
            "--port", "0", "--workers", "2", "--job-journal", "none",
        ],
        cwd=tmp_path,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines: list[str] = []
    threading.Thread(
        target=lambda: [lines.append(l.rstrip("\n")) for l in process.stdout],
        daemon=True,
    ).start()
    try:
        deadline = time.monotonic() + 120.0
        url = None
        while time.monotonic() < deadline:
            banner = next(
                (l for l in list(lines) if "serving analysis service" in l), None
            )
            if banner:
                url = banner.split("on ", 1)[1].split(" ", 1)[0]
                break
            assert process.poll() is None, lines
            time.sleep(0.1)
        assert url, lines

        def wait_restarts(count: int) -> None:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                seen = sum(
                    1 for l in list(lines) if re.search(r"restarting slot \d", l)
                )
                if seen >= count:
                    return
                time.sleep(0.1)
            raise AssertionError(f"saw fewer than {count} restarts in: {lines}")

        def healthz_ok() -> None:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    with urllib.request.urlopen(f"{url}/healthz", timeout=10) as r:
                        assert json.loads(r.read())["status"] == "ok"
                        return
                except (urllib.error.URLError, http.client.HTTPException):
                    time.sleep(0.1)
            raise AssertionError("healthz stopped answering")

        for round_number in (1, 2):
            try:
                _post(url, "/v1/topology", {})
                crashed = False
            except (urllib.error.URLError, http.client.HTTPException):
                crashed = True  # the serving worker died mid-request
            assert crashed, "the injected handler crash did not fire"
            wait_restarts(round_number)
            healthz_ok()  # siblings/replacements keep the GET plane up

        output = "\n".join(lines)
        assert re.search(r"worker \d+ exited \(13\); restarting slot \d", output)
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=60.0)
        except subprocess.TimeoutExpired:
            process.kill()
            raise
    assert code == 0
    assert "shutdown complete (all workers drained, journals flushed)" in "\n".join(
        lines
    )


def test_breaker_probe_success_closes_and_traffic_resumes():
    now = {"t": 0.0}
    breaker = CircuitBreaker(
        failure_threshold=1, cooldown_s=10.0, monotonic=lambda: now["t"]
    )
    client = _ScriptedTransport(
        [ServiceError("down", code="unreachable", status=503), b"ok", b"ok2"],
        breaker=breaker,
    )
    with pytest.raises(ServiceError):
        client.call_raw("topology", {})
    now["t"] = 11.0
    assert client.call_raw("topology", {}) == b"ok"  # the half-open probe
    assert breaker.state == "closed"
    assert client.call_raw("topology", {}) == b"ok2"

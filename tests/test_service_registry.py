"""Workspace registry behaviour: LRU warm bound, fallback, engine pools.

The registry is what lets one ``cpsec serve`` process serve several named
workspaces: path-backed entries load lazily, stay warm up to the LRU bound,
and reload transparently (bit-identically) after eviction; the default entry
preserves single-workspace server semantics for requests that name nothing.
"""

import pytest

from repro.service import (
    AnalysisService,
    AssociateRequest,
    ServiceError,
    canonical_json,
)
from repro.workspace import Workspace

SCALE_A = 0.02
SCALE_B = 0.03


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    root = tmp_path_factory.mktemp("registry")
    path_a = root / "a.cpsecws"
    path_b = root / "b.cpsecws"
    Workspace.build(scale=SCALE_A).save(path_a)
    Workspace.build(scale=SCALE_B).save(path_b)
    return path_a, path_b


def test_path_backed_entries_load_lazily_and_lru_evict(artifacts):
    path_a, path_b = artifacts
    # Response caching off: a repeated request must actually reach the
    # registry, or the reload-after-eviction path would never be exercised.
    service = AnalysisService(
        workspaces={"a": path_a, "b": path_b},
        max_warm_workspaces=1,
        max_response_cache_entries=0,
    )
    baseline_a = service.associate(AssociateRequest(scale=SCALE_A, workspace="a"))
    health = service.health()
    assert health["workspaces"]["a"]["loaded"]
    assert not health["workspaces"]["b"]["loaded"]  # lazy until requested
    # Loading "b" evicts "a" (warm bound 1).
    service.associate(AssociateRequest(scale=SCALE_B, workspace="b"))
    health = service.health()
    assert health["workspaces"]["b"]["loaded"]
    assert not health["workspaces"]["a"]["loaded"]
    assert health["workspace_registry"]["evictions"] == 1
    assert health["workspace_registry"]["warm"] == 1
    # An evicted workspace reloads from its artifact, bit-identically.
    reloaded = service.associate(AssociateRequest(scale=SCALE_A, workspace="a"))
    assert canonical_json(reloaded.to_dict()) == canonical_json(baseline_a.to_dict())
    assert service.health()["workspaces"]["a"]["loads"] == 2


def test_default_workspace_falls_back_on_scale_mismatch(artifacts):
    path_a, _ = artifacts
    service = AnalysisService(
        workspaces={"a": path_a}, default_workspace="a", save_artifacts=False
    )
    # Matching scale: served by the registry default, no slot built.
    service.associate(AssociateRequest(scale=SCALE_A))
    assert not service._slots
    # Mismatching scale on the *implicit* default: legacy in-memory slot
    # (single-workspace `cpsec serve` semantics), not an error.
    response = service.associate(AssociateRequest(scale=SCALE_B))
    assert SCALE_B in service._slots
    plain = AnalysisService().associate(AssociateRequest(scale=SCALE_B))
    assert canonical_json(response.to_dict()) == canonical_json(plain.to_dict())


def test_unloadable_artifact_is_a_typed_503(tmp_path):
    bogus = tmp_path / "corrupt.cpsecws"
    bogus.write_bytes(b"not a workspace artifact")
    service = AnalysisService(workspaces={"bad": bogus})
    with pytest.raises(ServiceError) as excinfo:
        service.associate(AssociateRequest(scale=SCALE_A, workspace="bad"))
    assert excinfo.value.status == 503
    assert excinfo.value.code == "workspace_load_failed"


def test_constructor_validates_registry():
    with pytest.raises(ValueError):
        AnalysisService(workspaces={"": "x.cpsecws"})
    with pytest.raises(ValueError):
        AnalysisService(default_workspace="ghost")
    with pytest.raises(ValueError):
        AnalysisService(max_warm_workspaces=0)


def test_shared_engine_pool_is_lru_bounded():
    workspace = Workspace.build(scale=SCALE_A)
    workspace.max_engine_handles = 2
    coverage = workspace.shared_engine(scorer="coverage")
    workspace.shared_engine(scorer="cosine")
    info = workspace.engine_pool_info()
    assert info == {"engines": 2, "max_engines": 2, "evictions": 0}
    # A third configuration evicts the least recently used (coverage).
    workspace.shared_engine(scorer="jaccard")
    info = workspace.engine_pool_info()
    assert info["engines"] == 2
    assert info["evictions"] == 1
    # The evicted configuration comes back on demand (for a freshly *built*
    # workspace that is the original built engine; a *loaded* one rebuilds
    # from the prepared payload -- identical results either way).
    rebuilt = workspace.shared_engine(scorer="coverage")
    assert rebuilt is coverage
    assert rebuilt.scorer == "coverage"
    assert workspace.engine_pool_info()["engines"] == 2
    # Touching an entry refreshes its LRU position.
    workspace.shared_engine(scorer="jaccard")
    workspace.shared_engine(scorer="cosine")  # evicts coverage again, not jaccard
    handles = {engine.scorer for engine in workspace.engine_handles()}
    assert handles == {"jaccard", "cosine"}

"""Zero-copy mmap loading of v2 workspace artifacts.

``Workspace.load(path, mmap=True)`` must be an *exact* shortcut, like every
other fast path in this repo: an engine over a memory-mapped artifact must
return bit-identical associations to an engine over the same artifact loaded
eagerly, across every scorer, both fidelity modes, and both case studies.
The mmap path must also stay honest about its laziness (a cold load parses
the header only), fall back gracefully for v1 artifacts and delta-extended
artifacts, and keep mutation safe via copy-on-extend.
"""

from __future__ import annotations

import json
import sys

import numpy as np
import pytest

from helpers_equivalence import association_signature
from repro.casestudies.centrifuge import build_centrifuge_model
from repro.casestudies.uav import build_uav_model
from repro.corpus.synthesis import build_corpus, build_extension_corpus
from repro.search.engine import SCORERS, SearchEngine
from repro.workspace import SECTION_ALIGN, WORKSPACE_VERSION, Workspace

MODELS = {
    "centrifuge": build_centrifuge_model,
    "uav": build_uav_model,
}

TEST_SCALE = 0.03


@pytest.fixture(scope="module")
def base_artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("mmap") / "base.cpsecws"
    Workspace.build(scale=TEST_SCALE).save(path)
    return path


@pytest.fixture(scope="module")
def delta_records():
    return list(build_extension_corpus(count=25, seed=42).all_records())


@pytest.fixture(scope="module", params=SCORERS)
def scorer(request):
    return request.param


@pytest.fixture(scope="module", params=(True, False), ids=("fidelity", "no-fidelity"))
def fidelity_aware(request):
    return request.param


# -- format ---------------------------------------------------------------------


def _read_header(path) -> dict:
    raw = path.read_bytes()
    _, length, rest = raw.split(b"\n", 2)
    return json.loads(rest[: int(length)])


def test_v2_artifact_sections_are_page_aligned(base_artifact):
    header = _read_header(base_artifact)
    assert header["version"] == WORKSPACE_VERSION
    assert header["align"] == SECTION_ALIGN
    for name, (offset, length) in header["sections"].items():
        assert offset % SECTION_ALIGN == 0, (name, offset)
        assert length > 0


def test_mmap_cold_load_stays_lazy(base_artifact):
    workspace = Workspace.load(base_artifact, mmap=True)
    # The hot sections have not been decoded: hydration is still pending.
    assert workspace.prepared is None
    assert workspace._mmap_pending is not None
    # The header still answers fingerprint queries without hydrating.
    assert workspace.corpus_fingerprint
    assert workspace.prepared is None


def test_mmap_hydration_produces_zero_copy_views(base_artifact):
    if sys.byteorder != "little":
        pytest.skip("zero-copy views need a little-endian host")
    workspace = Workspace.load(base_artifact, mmap=True)
    prepared = workspace._materialized_prepared()
    index = prepared["indexes"]["vulnerability"]
    token = next(iter(index.tokens()))
    positions, frequencies = index.posting_arrays(token)
    assert isinstance(positions, np.ndarray)
    assert isinstance(frequencies, np.ndarray)
    # Views, not copies: the arrays do not own their bytes.
    assert positions.base is not None
    assert frequencies.base is not None


# -- exactness ------------------------------------------------------------------


@pytest.mark.parametrize("model_name", sorted(MODELS))
def test_mmap_engine_bit_identical_to_eager(
    base_artifact, scorer, fidelity_aware, model_name
):
    model = MODELS[model_name]()
    mapped = Workspace.load(base_artifact, mmap=True)
    eager = Workspace.load(base_artifact)
    assert association_signature(
        mapped.engine(scorer=scorer, fidelity_aware=fidelity_aware).associate(model)
    ) == association_signature(
        eager.engine(scorer=scorer, fidelity_aware=fidelity_aware).associate(model)
    )


def test_v1_artifact_loads_through_the_mmap_flag(base_artifact, tmp_path):
    """A v1 artifact has no aligned sections; mmap=True takes the legacy
    eager decode over the mapped bytes instead of failing."""
    v1_path = tmp_path / "v1.cpsecws"
    Workspace.load(base_artifact).save(v1_path, version=1)
    assert _read_header(v1_path)["version"] == 1
    mapped = Workspace.load(v1_path, mmap=True)
    model = build_centrifuge_model()
    assert association_signature(
        mapped.engine().associate(model)
    ) == association_signature(
        Workspace.load(base_artifact).engine().associate(model)
    )


def test_mmap_load_replays_delta_frames_exactly(
    base_artifact, tmp_path, delta_records
):
    path = tmp_path / "ws.cpsecws"
    path.write_bytes(base_artifact.read_bytes())
    Workspace.load(path).extend(delta_records, path=path)
    mapped = Workspace.load(path, mmap=True)
    merged = build_corpus(scale=TEST_SCALE)
    merged.add_all(delta_records)
    model = build_uav_model()
    assert association_signature(
        mapped.engine().associate(model)
    ) == association_signature(Workspace.load(path).engine().associate(model))
    assert len(mapped.corpus) == len(merged)


def test_mmap_load_recovers_from_a_torn_tail(
    base_artifact, tmp_path, delta_records
):
    path = tmp_path / "ws.cpsecws"
    path.write_bytes(base_artifact.read_bytes())
    Workspace.load(path).extend(delta_records, path=path)
    raw = path.read_bytes()
    path.write_bytes(raw[:-64])  # tear the appended frame
    recovered = Workspace.load(path, mmap=True)
    model = build_centrifuge_model()
    assert association_signature(
        recovered.engine().associate(model)
    ) == association_signature(
        Workspace.load(base_artifact).engine().associate(model)
    )


# -- mutation safety ------------------------------------------------------------


def test_extend_over_mmap_workspace_copies_before_mutating(
    base_artifact, tmp_path, delta_records
):
    """In-memory extend of a mapped workspace must not write through the map
    (the pages are shared, read-only) and must stay exact."""
    path = tmp_path / "ws.cpsecws"
    path.write_bytes(base_artifact.read_bytes())
    before = path.read_bytes()
    workspace = Workspace.load(path, mmap=True)
    workspace.extend(delta_records)  # in-memory only
    assert path.read_bytes() == before  # the mapped file is untouched
    merged = build_corpus(scale=TEST_SCALE)
    merged.add_all(delta_records)
    reference = SearchEngine(merged, sharded=False, enable_cache=False)
    model = build_centrifuge_model()
    assert association_signature(
        workspace.engine().associate(model)
    ) == association_signature(reference.associate(model))


def test_save_roundtrip_of_mmap_loaded_workspace(base_artifact, tmp_path):
    """save() of a lazily mapped workspace re-serializes identical bytes."""
    workspace = Workspace.load(base_artifact, mmap=True)
    copy_path = tmp_path / "copy.cpsecws"
    workspace.save(copy_path)
    assert copy_path.read_bytes() == base_artifact.read_bytes()


# -- corruption -----------------------------------------------------------------


def test_mmap_load_rejects_truncated_sections(base_artifact, tmp_path):
    path = tmp_path / "cut.cpsecws"
    raw = base_artifact.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(ValueError):
        Workspace.load(path, mmap=True)


def test_mmap_load_rejects_missing_file(tmp_path):
    # Same contract as the eager path: a missing artifact is an OSError.
    with pytest.raises(FileNotFoundError):
        Workspace.load(tmp_path / "ghost.cpsecws", mmap=True)


def test_section_alignment_constant_is_a_page_multiple():
    assert SECTION_ALIGN % 4096 == 0

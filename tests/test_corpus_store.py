"""Tests for the corpus store: indexing, cross-references, serialization."""

import pytest

from repro.corpus.schema import AttackPattern, RecordKind, Vulnerability, Weakness
from repro.corpus.store import CorpusStore


def small_store() -> CorpusStore:
    store = CorpusStore()
    store.add(AttackPattern("CAPEC-88", "OS Command Injection",
                            related_weaknesses=("CWE-78",)))
    store.add(Weakness("CWE-78", "OS Command Injection",
                       related_attack_patterns=("CAPEC-88",)))
    store.add(Weakness("CWE-306", "Missing Authentication for Critical Function"))
    store.add(Vulnerability("CVE-2019-6572", "unauthenticated MODBUS writes",
                            cwe_ids=("CWE-306",),
                            affected_platforms=("modbus controller",)))
    store.add(Vulnerability("CVE-2018-0101", "Cisco ASA remote code execution",
                            cwe_ids=("CWE-78",), affected_platforms=("cisco asa",)))
    return store


def test_len_contains_get():
    store = small_store()
    assert len(store) == 5
    assert "CWE-78" in store
    assert "CVE-2018-0101" in store
    assert "CWE-9999" not in store
    assert store.get("CAPEC-88").name == "OS Command Injection"
    with pytest.raises(KeyError):
        store.get("CVE-0000-0")


def test_duplicate_identifier_rejected():
    store = small_store()
    with pytest.raises(ValueError):
        store.add(Weakness("CWE-78", "again"))


def test_counts_and_records_of_kind():
    store = small_store()
    counts = store.counts()
    assert counts[RecordKind.ATTACK_PATTERN] == 1
    assert counts[RecordKind.WEAKNESS] == 2
    assert counts[RecordKind.VULNERABILITY] == 2
    assert len(store.records_of_kind(RecordKind.WEAKNESS)) == 2
    assert len(list(store.all_records())) == 5


def test_cross_references_pattern_to_weakness():
    store = small_store()
    weaknesses = store.weaknesses_for_pattern("CAPEC-88")
    assert [w.identifier for w in weaknesses] == ["CWE-78"]
    with pytest.raises(KeyError):
        store.weaknesses_for_pattern("CAPEC-0")


def test_cross_references_weakness_to_pattern():
    store = small_store()
    patterns = store.patterns_for_weakness("CWE-78")
    assert [p.identifier for p in patterns] == ["CAPEC-88"]
    with pytest.raises(KeyError):
        store.patterns_for_weakness("CWE-0")


def test_cross_references_weakness_to_vulnerabilities():
    store = small_store()
    vulns = store.vulnerabilities_for_weakness("CWE-306")
    assert [v.identifier for v in vulns] == ["CVE-2019-6572"]


def test_cross_references_vulnerability_to_weakness():
    store = small_store()
    weaknesses = store.weaknesses_for_vulnerability("CVE-2018-0101")
    assert [w.identifier for w in weaknesses] == ["CWE-78"]
    with pytest.raises(KeyError):
        store.weaknesses_for_vulnerability("CVE-0000-0")


def test_platform_index():
    store = small_store()
    assert [v.identifier for v in store.vulnerabilities_for_platform("cisco asa")] == [
        "CVE-2018-0101"
    ]
    assert store.vulnerabilities_for_platform("CISCO ASA")  # case-insensitive
    assert "cisco asa" in store.platforms()
    assert store.vulnerabilities_for_platform("unknown platform") == ()


def test_merge_combines_stores():
    first = small_store()
    second = CorpusStore()
    second.add(Weakness("CWE-400", "Uncontrolled Resource Consumption"))
    merged = first.merge(second)
    assert merged is first
    assert "CWE-400" in first


def test_dict_round_trip():
    store = small_store()
    clone = CorpusStore.from_dict(store.to_dict())
    assert len(clone) == len(store)
    assert clone.get("CVE-2018-0101").affected_platforms == ("cisco asa",)
    assert clone.get("CWE-78").related_attack_patterns == ("CAPEC-88",)
    assert clone.get("CAPEC-88").related_weaknesses == ("CWE-78",)


def test_file_round_trip(tmp_path):
    store = small_store()
    path = store.save(tmp_path / "corpus.json")
    clone = CorpusStore.load(path)
    assert clone.counts() == store.counts()
    assert clone.get("CVE-2019-6572").cwe_ids == ("CWE-306",)


def test_add_all_returns_count():
    store = CorpusStore()
    added = store.add_all([Weakness("CWE-1", "a"), Weakness("CWE-2", "b")])
    assert added == 2

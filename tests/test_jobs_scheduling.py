"""Scheduling behavior of the job manager under the deterministic harness.

Every test here drives a ``start_workers=False`` manager one
``run_next()`` at a time with a :class:`helpers_jobs.FakeClock`, so the
assertions are about *decisions* -- which job runs next, what a rejected
submission costs, what cancelling a parent does to its chain -- not about
racing real threads.  There is no ``time.sleep`` and no wall-clock
dependence anywhere in this module.
"""

import pytest

from helpers_jobs import FakeClock, ScriptedService, drain_steps, stepped_manager
from repro.jobs import MERGE_OPERATION, JobManager, read_journal
from repro.service import (
    AnalysisService,
    ServiceError,
    WhatIfRequest,
    canonical_json,
)


# ---------------------------------------------------------------------------
# priority + fairness through the manager


def test_interactive_jobs_run_before_earlier_batch_jobs():
    manager, _ = stepped_manager()
    try:
        batch = manager.submit("simulate", {"scenario": "nominal"})
        assert batch.priority == "batch"  # inferred from the operation
        interactive = manager.submit("topology", {})
        assert interactive.priority == "interactive"
        assert manager.run_next() is interactive
        assert manager.run_next() is batch
    finally:
        manager.close(timeout=5.0)


def test_explicit_priority_overrides_the_default():
    manager, _ = stepped_manager()
    try:
        demoted = manager.submit("topology", {}, priority="batch")
        promoted = manager.submit(
            "simulate", {"scenario": "nominal"}, priority="interactive"
        )
        assert manager.run_next() is promoted
        assert manager.run_next() is demoted
    finally:
        manager.close(timeout=5.0)


def test_per_workspace_fair_share_follows_weights():
    """A weight-3 workspace gets three dispatches per weight-1 dispatch."""
    manager, _ = stepped_manager()
    try:
        for _ in range(6):
            manager.submit("associate", {"workspace": "heavy"}, weight=3.0)
            manager.submit("associate", {"workspace": "light"}, weight=1.0)
        order = [job.payload["workspace"] for job in drain_steps(manager)]
        # While both workspaces still hold work (the first 8 dispatches --
        # heavy's backlog of 6 drains 3x as fast), the share is exactly 3:1.
        assert order[:4].count("heavy") == 3, order
        assert order[:8].count("heavy") == 6, order
        # Once heavy drains, the light backlog finishes out.
        assert set(order[8:]) == {"light"}
    finally:
        manager.close(timeout=5.0)


def test_fifo_policy_ignores_weights_and_priorities_order():
    manager, _ = stepped_manager(policy="fifo")
    try:
        first = manager.submit("simulate", {"scenario": "nominal"})
        second = manager.submit("topology", {}, weight=100.0)
        assert manager.run_next() is first  # strict submission order
        assert manager.run_next() is second
        assert manager.stats()["policy"] == "fifo"
    finally:
        manager.close(timeout=5.0)


def test_wait_time_percentiles_use_the_injected_clock(service_clock=None):
    manager, clock = stepped_manager()
    try:
        manager.submit("topology", {})
        clock.advance(2.0)  # the job sat queued for exactly two fake seconds
        job = manager.run_next()
        assert job.wait_s == pytest.approx(2.0)
        wait = manager.stats()["wait_s"]["interactive"]
        assert wait["count"] == 1
        assert wait["p50"] == pytest.approx(2.0)
        assert wait["p95"] == pytest.approx(2.0)
    finally:
        manager.close(timeout=5.0)


# ---------------------------------------------------------------------------
# dependency chains


def test_dependency_chain_runs_in_topological_order():
    manager, _ = stepped_manager()
    try:
        parent = manager.submit("topology", {})
        child = manager.submit("validate", {}, depends_on=[parent.job_id])
        assert child.state == "queued"
        ran = drain_steps(manager)
        assert ran == [parent, child]
        assert child.state == "succeeded"
    finally:
        manager.close(timeout=5.0)


def test_fanout_merge_matches_synchronous_sweep_byte_for_byte():
    """The async fan-out -> merge result is the synchronous sweep, exactly."""
    service = AnalysisService()
    manager, _ = stepped_manager(service)
    try:
        sweeps = {"narrow": WhatIfRequest(scale=0.02), "wide": WhatIfRequest(scale=0.03)}
        labels = {}
        for name, request in sweeps.items():
            job = manager.submit("whatif", request.to_dict(), priority="batch")
            labels[job.job_id] = name
        merge = manager.submit(
            MERGE_OPERATION,
            {"labels": labels},
            depends_on=list(labels),
        )
        drain_steps(manager)
        assert merge.state == "succeeded"
        merged = merge.result["results"]
        assert set(merged) == set(sweeps)
        for name, request in sweeps.items():
            sync = service.whatif(request).to_dict()
            assert canonical_json(merged[name]) == canonical_json(sync)
    finally:
        manager.close(timeout=5.0)


def test_merge_requires_dependencies_and_valid_labels():
    manager, _ = stepped_manager()
    try:
        with pytest.raises(ServiceError) as excinfo:
            manager.submit(MERGE_OPERATION, {"labels": {}})
        assert excinfo.value.code == "invalid_dependencies"
        parent = manager.submit("topology", {})
        with pytest.raises(ServiceError) as excinfo:
            manager.submit(
                MERGE_OPERATION,
                {"labels": "not-a-dict"},
                depends_on=[parent.job_id],
            )
        assert excinfo.value.code == "invalid_labels"
    finally:
        manager.close(timeout=5.0)


def test_cancelling_a_parent_cancels_the_whole_unstarted_chain():
    """Dependents of a cancelled job terminate; nothing stays queued forever."""
    manager, _ = stepped_manager()
    try:
        parent = manager.submit("topology", {})
        child = manager.submit("validate", {}, depends_on=[parent.job_id])
        grandchild = manager.submit("export", {}, depends_on=[child.job_id])
        manager.cancel(parent.job_id)
        assert parent.state == "cancelled"
        for dependent in (child, grandchild):
            assert dependent.state == "cancelled"
            assert dependent.error["code"] == "dependency_unsatisfied"
            assert dependent.error["status"] == 409
        assert manager.run_next() is None  # the scheduler is truly empty
        assert manager.stats()["waiting_on_dependencies"] == 0
    finally:
        manager.close(timeout=5.0)


def test_failed_parent_cascades_failure_reason_to_dependents():
    service = ScriptedService({"topology": RuntimeError("boom")})
    manager, _ = stepped_manager(service)
    try:
        parent = manager.submit("topology", {})
        child = manager.submit("validate", {}, depends_on=[parent.job_id])
        drain_steps(manager)
        assert parent.state == "failed"
        assert child.state == "cancelled"
        assert child.error["code"] == "dependency_unsatisfied"
        assert parent.job_id in child.error["message"]
    finally:
        manager.close(timeout=5.0)


def test_submitting_against_a_terminal_failed_parent_cancels_immediately():
    service = ScriptedService({"topology": RuntimeError("boom")})
    manager, _ = stepped_manager(service)
    try:
        parent = manager.submit("topology", {})
        drain_steps(manager)
        assert parent.state == "failed"
        late = manager.submit("validate", {}, depends_on=[parent.job_id])
        assert late.state == "cancelled"
        assert late.error["code"] == "dependency_unsatisfied"
    finally:
        manager.close(timeout=5.0)


def test_unknown_dependency_is_a_typed_400():
    manager, _ = stepped_manager()
    try:
        with pytest.raises(ServiceError) as excinfo:
            manager.submit("topology", {}, depends_on=["job-nope"])
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unknown_dependency"
        assert not manager.jobs()  # nothing was queued
    finally:
        manager.close(timeout=5.0)


# ---------------------------------------------------------------------------
# quotas


def test_quota_exhaustion_is_a_typed_429_with_retry_hint():
    manager, clock = stepped_manager(quota=(1.0, 2))
    try:
        manager.submit("topology", {}, client="alice")
        manager.submit("topology", {}, client="alice")
        with pytest.raises(ServiceError) as excinfo:
            manager.submit("topology", {}, client="alice")
        assert excinfo.value.status == 429
        assert excinfo.value.code == "quota_exhausted"
        assert excinfo.value.details["retry_after_s"] == pytest.approx(1.0)
        # The fake clock refills the bucket deterministically.
        clock.advance(1.0)
        refilled = manager.submit("topology", {}, client="alice")
        assert refilled.state == "queued"
        assert manager.stats()["quota"]["rejections"] == 1
    finally:
        manager.close(timeout=5.0)


def test_quota_rejected_submission_consumes_no_journal_space(tmp_path):
    """A 429 must cost nothing: no job record, no journal line."""
    journal = tmp_path / "jobs.jsonl"
    manager, _ = stepped_manager(quota=(0.001, 1), journal_path=journal)
    try:
        manager.submit("topology", {}, client="alice")
        lines_before = journal.read_text().count("\n")
        jobs_before = len(manager.jobs())
        for _ in range(5):
            with pytest.raises(ServiceError):
                manager.submit("topology", {}, client="alice")
        assert journal.read_text().count("\n") == lines_before
        assert len(manager.jobs()) == jobs_before
    finally:
        manager.close(timeout=5.0)


def test_anonymous_submissions_share_one_quota_bucket():
    """Omitting a client id is not a quota bypass: anonymous is a client."""
    manager, _ = stepped_manager(quota=(0.001, 1))
    try:
        manager.submit("topology", {})
        with pytest.raises(ServiceError) as excinfo:
            manager.submit("topology", {})
        assert excinfo.value.code == "quota_exhausted"
        assert excinfo.value.details["client"] == "anonymous"
        # A named client still has its own independent bucket.
        named = manager.submit("topology", {}, client="alice")
        assert named.state == "queued"
    finally:
        manager.close(timeout=5.0)


def test_quota_state_survives_restart(tmp_path):
    """A restart refills buckets for the downtime only, not to full burst."""
    journal = tmp_path / "jobs.jsonl"
    manager, _ = stepped_manager(quota=(1.0, 4), journal_path=journal)
    try:
        for _ in range(4):
            manager.submit("topology", {}, client="alice")
        drain_steps(manager)
    finally:
        manager.close(timeout=5.0)
    assert '"kind":"quota"' in journal.read_text()

    # 2 seconds of wall-clock downtime at 1 token/s refills exactly 2 of the
    # 4 tokens alice spent -- not the full burst a fresh bucket would grant.
    restarted, _ = stepped_manager(
        clock=FakeClock(start=1_700_000_000.0 + 2.0),
        quota=(1.0, 4),
        journal_path=journal,
    )
    try:
        restarted.submit("topology", {}, client="alice")
        restarted.submit("topology", {}, client="alice")
        with pytest.raises(ServiceError) as excinfo:
            restarted.submit("topology", {}, client="alice")
        assert excinfo.value.code == "quota_exhausted"
        assert excinfo.value.details["retry_after_s"] == pytest.approx(1.0)
        # An unseen client still starts with a full bucket.
        assert restarted.submit("topology", {}, client="bob").state == "queued"
        drain_steps(restarted)
    finally:
        restarted.close(timeout=5.0)


def test_journal_without_quota_snapshot_replays_with_full_buckets(tmp_path):
    """Pre-snapshot journals (or quota newly enabled) grant full buckets."""
    journal = tmp_path / "jobs.jsonl"
    manager, _ = stepped_manager(journal_path=journal)  # no quota: no snapshot
    try:
        manager.submit("topology", {}, client="alice")
        drain_steps(manager)
    finally:
        manager.close(timeout=5.0)
    assert '"kind":"quota"' not in journal.read_text()

    restarted, _ = stepped_manager(quota=(0.001, 1), journal_path=journal)
    try:
        assert restarted.submit("topology", {}, client="alice").state == "queued"
        with pytest.raises(ServiceError):
            restarted.submit("topology", {}, client="alice")
        drain_steps(restarted)
    finally:
        restarted.close(timeout=5.0)


def test_journal_compaction_keeps_only_the_last_quota_snapshot(tmp_path):
    """Each shutdown appends a snapshot; compaction drops all but the last."""
    journal = tmp_path / "jobs.jsonl"
    for _ in range(2):
        manager, _ = stepped_manager(quota=(1.0, 2), journal_path=journal)
        try:
            manager.submit("topology", {}, client="alice")
            drain_steps(manager)
        finally:
            manager.close(timeout=5.0)
    assert journal.read_text().count('"kind":"quota"') == 2

    # journal_keep triggers compaction at startup; the replayed bucket state
    # must come from the *last* snapshot (alice spent 1 token per cycle, so
    # the newest snapshot has 0 tokens left of the burst of 2).
    restarted, _ = stepped_manager(
        quota=(1.0, 2), journal_path=journal, journal_keep=1
    )
    try:
        assert journal.read_text().count('"kind":"quota"') == 1
        with pytest.raises(ServiceError) as excinfo:
            restarted.submit("topology", {}, client="alice")
        assert excinfo.value.code == "quota_exhausted"
    finally:
        restarted.close(timeout=5.0)


# ---------------------------------------------------------------------------
# journal compatibility


def test_scheduling_fields_survive_journal_replay(tmp_path):
    journal = tmp_path / "jobs.jsonl"
    first, _ = stepped_manager(journal_path=journal)
    parent = first.submit(
        "topology", {}, priority="batch", weight=2.5, client="alice"
    )
    child = first.submit("validate", {}, depends_on=[parent.job_id])
    drain_steps(first)
    assert first.close(timeout=5.0)

    second, _ = stepped_manager(journal_path=journal)
    try:
        replayed_parent = second.get(parent.job_id)
        assert replayed_parent.priority == "batch"
        assert replayed_parent.weight == 2.5
        assert replayed_parent.client == "alice"
        replayed_child = second.get(child.job_id)
        assert replayed_child.deps == [parent.job_id]
        assert replayed_child.to_dict()["depends_on"] == [parent.job_id]
        assert replayed_child.state == "succeeded"
    finally:
        second.close(timeout=5.0)


def test_pre_scheduler_journal_replays_cleanly(tmp_path):
    """A journal written before the scheduler existed still replays.

    The fixture lines carry *only* the pre-scheduler fields; replay must
    default priority, weight, and dependencies exactly as a field-less
    submission would.
    """
    journal = tmp_path / "jobs.jsonl"
    old_lines = [
        '{"v": 1, "kind": "submitted", "job_id": "job-old1",'
        ' "operation": "topology", "request": {}, "created_at": 10.0}',
        '{"v": 1, "kind": "started", "job_id": "job-old1", "started_at": 10.5}',
        '{"v": 1, "kind": "finished", "job_id": "job-old1",'
        ' "state": "succeeded", "finished_at": 11.0, "result": {"ok": true}}',
        '{"v": 1, "kind": "submitted", "job_id": "job-old2",'
        ' "operation": "simulate", "request": {"scenario": "nominal"},'
        ' "created_at": 12.0}',
    ]
    journal.write_text("".join(line + "\n" for line in old_lines))
    manager, _ = stepped_manager(journal_path=journal)
    try:
        done = manager.get("job-old1")
        assert done.state == "succeeded"
        assert done.result == {"ok": True}
        assert done.priority == "interactive"  # defaulted from the operation
        assert done.weight == 1.0
        assert done.deps == []
        # The never-finished job is honestly failed, with batch defaults.
        interrupted = manager.get("job-old2")
        assert interrupted.state == "failed"
        assert interrupted.error["code"] == "interrupted"
        assert interrupted.priority == "batch"
    finally:
        manager.close(timeout=5.0)


def test_torn_tail_journal_with_dependency_edge_replays(tmp_path):
    """A crash mid-write must not lose the dependency edge written before it."""
    journal = tmp_path / "jobs.jsonl"
    # The process died between journalling the chain and running it: two
    # complete submission lines (the second carrying the edge), then half a
    # line from the write the crash interrupted.
    journal.write_text(
        '{"v": 1, "kind": "submitted", "job_id": "job-parent",'
        ' "operation": "topology", "request": {}, "created_at": 1.0,'
        ' "priority": "interactive", "weight": 1.0}\n'
        '{"v": 1, "kind": "submitted", "job_id": "job-child",'
        ' "operation": "validate", "request": {}, "created_at": 1.1,'
        ' "priority": "interactive", "weight": 1.0,'
        ' "depends_on": ["job-parent"]}\n'
        '{"v":1,"kind":"subm'
    )
    manager, _ = stepped_manager(journal_path=journal)
    try:
        replayed = manager.get("job-child")
        assert replayed.deps == ["job-parent"]
        # Neither job ran before the crash: both replay as interrupted.
        assert replayed.state == "failed"
        assert replayed.error["code"] == "interrupted"
        assert manager.get("job-parent").state == "failed"
        # The torn tail itself was dropped, not replayed as garbage.
        entries = read_journal(journal)
        assert all(entry["kind"] != "subm" for entry in entries)
    finally:
        manager.close(timeout=5.0)


def test_journal_replay_sanitizes_garbage_scheduling_fields(tmp_path):
    """Hand-edited or corrupt field values degrade to defaults, not crashes."""
    journal = tmp_path / "jobs.jsonl"
    journal.write_text(
        '{"v": 1, "kind": "submitted", "job_id": "job-garbled",'
        ' "operation": "topology", "request": {}, "created_at": 1.0,'
        ' "priority": "urgent", "weight": "heavy",'
        ' "depends_on": [42, "job-real"], "client": 7}\n'
    )
    manager, _ = stepped_manager(journal_path=journal)
    try:
        job = manager.get("job-garbled")
        assert job.priority == "interactive"  # unknown class -> default
        assert job.weight == 1.0  # non-numeric -> default
        assert job.deps == ["job-real"]  # non-string entries dropped
        assert job.client is None
    finally:
        manager.close(timeout=5.0)


# ---------------------------------------------------------------------------
# stats surface


def test_stats_reports_scheduler_queue_and_dependency_depth():
    manager, _ = stepped_manager()
    try:
        running_free = manager.submit("topology", {})
        blocked = manager.submit("validate", {}, depends_on=[running_free.job_id])
        stats = manager.stats()
        assert stats["policy"] == "fair"
        # Both jobs are in the "queued" state, but only the dependency-free
        # one is *ready*: the scheduler depth tells them apart.
        assert stats["by_priority"]["interactive"]["queued"] == 2
        assert stats["waiting_on_dependencies"] == 1
        assert stats["scheduler"]["depth"]["interactive"] == 1
        drain_steps(manager)
        done = manager.stats()
        assert done["waiting_on_dependencies"] == 0
        assert done["scheduler"]["dispatched"]["interactive"] == 2
        assert blocked.state == "succeeded"
    finally:
        manager.close(timeout=5.0)


def test_validation_rejects_bad_priority_weight_and_quota_config():
    manager, _ = stepped_manager()
    try:
        with pytest.raises(ServiceError) as excinfo:
            manager.submit("topology", {}, priority="urgent")
        assert excinfo.value.code == "invalid_priority"
        with pytest.raises(ServiceError) as excinfo:
            manager.submit("topology", {}, weight=-1.0)
        assert excinfo.value.code == "invalid_weight"
    finally:
        manager.close(timeout=5.0)
    with pytest.raises(ValueError):
        JobManager(ScriptedService(), quota=(0.0, 1), start_workers=False)


def test_fake_clock_timestamps_flow_into_events():
    clock = FakeClock(start=1_000.0)
    manager, _ = stepped_manager(clock=clock)
    try:
        job = manager.submit("topology", {})
        assert job.created_at == 1_000.0
        clock.advance(5.0)
        manager.run_next()
        states = [
            (event.state, event.timestamp)
            for event in job.events
            if event.kind == "state"
        ]
        assert states[0] == ("queued", 1_000.0)
        assert states[-1] == ("succeeded", 1_005.0)
    finally:
        manager.close(timeout=5.0)

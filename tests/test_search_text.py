"""Tests for tokenization and text utilities."""

from repro.search.text import (
    jaccard_similarity,
    normalize_token,
    term_frequencies,
    tokenize,
    vocabulary,
)


def test_tokenize_lowercases_and_strips_punctuation():
    assert tokenize("Cisco ASA!", remove_stop_words=False) == ["cisco", "asa"]


def test_tokenize_removes_stop_words():
    tokens = tokenize("the attacker allows a vulnerability in the system")
    assert "the" not in tokens
    assert "attacker" not in tokens
    assert "vulnerability" not in tokens
    assert "system" in tokens


def test_tokenize_keeps_compound_identifiers_and_their_parts():
    tokens = tokenize("NI cRIO-9063 firmware")
    assert "crio-9063" in tokens
    assert "crio" in tokens
    assert "9063" in tokens


def test_compound_and_split_forms_match_each_other():
    with_dash = set(tokenize("cRIO-9063"))
    without_dash = set(tokenize("cRIO 9063"))
    assert with_dash & without_dash  # they share the split parts


def test_normalize_plural_stripping():
    assert normalize_token("windows") == "window"
    assert normalize_token("appliances") == normalize_token("appliance")
    assert normalize_token("class") == "class"  # -ss is preserved
    assert normalize_token("bus") == "bus"  # too short to strip


def test_normalize_ing_stripping():
    assert normalize_token("operating") == "operat"
    assert normalize_token("ring") == "ring"  # too short to strip


def test_normalization_is_idempotent():
    for token in ("windows", "operating", "appliances", "modbus", "asa"):
        once = normalize_token(token)
        assert normalize_token(once) == once


def test_empty_text_tokenizes_to_empty():
    assert tokenize("") == []
    assert tokenize("the and of") == []


def test_term_frequencies():
    counts = term_frequencies("linux kernel linux")
    assert counts["linux"] == 2
    assert counts["kernel"] == 1


def test_vocabulary_union():
    vocab = vocabulary(["linux kernel", "windows kernel"])
    assert {"linux", "window", "kernel"} <= vocab


def test_jaccard_similarity_bounds_and_symmetry():
    assert jaccard_similarity("", "linux") == 0.0
    assert jaccard_similarity("linux kernel", "linux kernel") == 1.0
    a = jaccard_similarity("linux kernel driver", "windows kernel driver")
    b = jaccard_similarity("windows kernel driver", "linux kernel driver")
    assert a == b
    assert 0.0 < a < 1.0

"""Tests for the attack-vector record types."""

import pytest

from repro.corpus.cvss import CvssVector
from repro.corpus.schema import AttackPattern, RecordKind, Vulnerability, Weakness


def test_attack_pattern_requires_capec_prefix():
    with pytest.raises(ValueError):
        AttackPattern("88", "OS Command Injection")


def test_weakness_requires_cwe_prefix():
    with pytest.raises(ValueError):
        Weakness("78", "OS Command Injection")


def test_vulnerability_requires_cve_prefix_and_plausible_year():
    with pytest.raises(ValueError):
        Vulnerability("2018-0101")
    with pytest.raises(ValueError):
        Vulnerability("CVE-2018-0101", published_year=1901)


def test_record_kinds():
    assert AttackPattern("CAPEC-88", "x").kind is RecordKind.ATTACK_PATTERN
    assert Weakness("CWE-78", "x").kind is RecordKind.WEAKNESS
    assert Vulnerability("CVE-2020-1").kind is RecordKind.VULNERABILITY


def test_attack_pattern_text_includes_prerequisites_and_domains():
    pattern = AttackPattern(
        "CAPEC-88", "OS Command Injection", "injects commands",
        prerequisites=("input reaches a shell",), domains=("Software",),
    )
    assert "shell" in pattern.text
    assert "Software" in pattern.text


def test_weakness_text_and_scope_query():
    weakness = Weakness(
        "CWE-78", "OS Command Injection", "constructs OS commands from input",
        platforms=("ICS/OT",),
        consequences=(("Integrity", "Execute Unauthorized Code"),),
    )
    assert "ICS/OT" in weakness.text
    assert weakness.impacts_scope("integrity")
    assert not weakness.impacts_scope("availability")


def test_vulnerability_text_name_and_scores():
    vulnerability = Vulnerability(
        "CVE-2018-0101",
        "remote code execution in Cisco ASA",
        cvss=CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H"),
        affected_platforms=("cisco asa",),
    )
    assert vulnerability.name == "CVE-2018-0101"
    assert "cisco asa" in vulnerability.text
    assert vulnerability.base_score == pytest.approx(10.0)
    assert vulnerability.severity == "Critical"


def test_records_are_frozen_and_hashable():
    pattern = AttackPattern("CAPEC-88", "OS Command Injection")
    weakness = Weakness("CWE-78", "OS Command Injection")
    assert len({pattern, pattern}) == 1
    with pytest.raises(AttributeError):
        weakness.name = "other"

"""Tests for the baseline coverage comparison (experiment E7's machinery)."""

import pytest

from repro.attacks.consequence import ConsequenceMapper
from repro.baselines.attack_trees import build_attack_tree
from repro.baselines.comparison import compare_coverage
from repro.baselines.stride import StrideAnalyzer


@pytest.fixture(scope="module")
def coverage(centrifuge_model, centrifuge_association):
    stride = StrideAnalyzer().analyze(centrifuge_model)
    tree = build_attack_tree(centrifuge_association, "BPCS Platform")
    mapper = ConsequenceMapper(duration_s=300.0)
    assessments = mapper.assess("CWE-78", "BPCS Platform") + mapper.assess(
        "CWE-693", "SIS Platform"
    )
    return compare_coverage(centrifuge_model, centrifuge_association, stride, tree, assessments)


def test_three_approaches_reported(coverage):
    assert len(coverage.approaches) == 3
    names = [approach.approach for approach in coverage.approaches]
    assert any("STRIDE" in name for name in names)
    assert any("Attack tree" in name for name in names)
    assert any("this work" in name for name in names)


def test_it_centric_baselines_reach_no_physical_consequences(coverage):
    stride = coverage.approach("STRIDE (IT-centric)")
    tree = coverage.approach("Attack tree")
    assert stride.findings_with_physical_consequence == 0
    assert stride.distinct_hazards_identified == 0
    assert tree.findings_with_physical_consequence == 0
    assert tree.distinct_hazards_identified == 0


def test_cps_aware_pipeline_identifies_hazards(coverage):
    cpsec = coverage.approach("Model-based CPS security (this work)")
    assert cpsec.findings_with_physical_consequence > 0
    assert cpsec.distinct_hazards_identified >= 1
    assert cpsec.findings > 0


def test_stride_misses_physical_components(coverage):
    stride = coverage.approach("STRIDE (IT-centric)")
    assert stride.physical_components_covered < 3


def test_unknown_approach_raises(coverage):
    with pytest.raises(KeyError):
        coverage.approach("nonexistent")


def test_rows_match_approaches(coverage):
    rows = coverage.as_rows()
    assert len(rows) == 3
    assert all(len(row) == 6 for row in rows)
    assert rows[0][0] == coverage.approaches[0].approach

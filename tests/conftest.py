"""Shared fixtures.

The expensive artifacts (synthetic corpus, search engine, centrifuge
association) are session-scoped: they are deterministic and read-only for the
tests that use them, so building them once keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.casestudies.centrifuge import build_centrifuge_model
from repro.corpus.seed import seed_corpus
from repro.corpus.synthesis import build_corpus
from repro.search.engine import SearchEngine


#: Corpus scale used by tests; small enough to keep the suite quick while
#: preserving the relative platform populations.
TEST_SCALE = 0.03


@pytest.fixture(scope="session")
def small_corpus():
    """Seed + synthetic corpus at test scale."""
    return build_corpus(scale=TEST_SCALE, seed=7)


@pytest.fixture(scope="session")
def seed_only_corpus():
    """Just the curated seed corpus."""
    return seed_corpus()


@pytest.fixture(scope="session")
def engine(small_corpus):
    """A search engine over the test-scale corpus."""
    return SearchEngine(small_corpus)


@pytest.fixture(scope="session")
def centrifuge_model():
    """The implementation-fidelity centrifuge model."""
    return build_centrifuge_model()


@pytest.fixture(scope="session")
def centrifuge_association(engine, centrifuge_model):
    """The associated centrifuge model (shared, treated as read-only)."""
    return engine.associate(centrifuge_model)

"""End-to-end integration tests across the full Fig. 1 pipeline.

These tests exercise the complete data flow of the paper's demonstration:
SysML model -> GraphML export -> general graph -> attack-vector association
-> filtering -> posture / what-if analysis -> exploit chains -> consequence
mapping on the simulated plant, all within one run.
"""

import pytest

from repro.analysis.metrics import compute_posture
from repro.analysis.report import render_posture_report, render_table1, render_whatif
from repro.analysis.whatif import WhatIfStudy
from repro.attacks.consequence import ConsequenceMapper
from repro.baselines.attack_trees import build_attack_tree
from repro.baselines.comparison import compare_coverage
from repro.baselines.stride import StrideAnalyzer
from repro.casestudies.centrifuge import build_centrifuge_sysml, hardened_workstation_variant
from repro.corpus.schema import RecordKind
from repro.graph.attributes import Fidelity
from repro.graph.graphml import read_graphml, write_graphml
from repro.graph.refinement import abstract_model
from repro.search.chains import find_exploit_chains
from repro.search.engine import SearchEngine
from repro.search.filters import FilterPipeline, by_severity


def test_fig1_pipeline_from_sysml_to_report(tmp_path, small_corpus):
    # 1. Systems engineer models the architecture in the SysML front end.
    diagram = build_centrifuge_sysml()
    # 2. Export to the general architectural model and to GraphML.
    model = diagram.to_system_graph()
    path = write_graphml(model, tmp_path / "centrifuge.graphml")
    reloaded = read_graphml(path)
    # 3. Associate attack vectors with the (re-loaded) model.
    engine = SearchEngine(small_corpus)
    association = engine.associate(reloaded)
    assert association.total > 0
    # 4. The dashboard's summary artifacts can be produced from it.
    table = render_table1(association)
    report = render_posture_report(association)
    assert "Windows 7" in table
    assert "BPCS Platform" in report


def test_fidelity_sweep_changes_the_result_space(small_corpus, centrifuge_model):
    engine = SearchEngine(small_corpus)
    conceptual = engine.associate(abstract_model(centrifuge_model, Fidelity.CONCEPTUAL))
    logical = engine.associate(abstract_model(centrifuge_model, Fidelity.LOGICAL))
    implementation = engine.associate(centrifuge_model)
    # Vulnerabilities only appear once implementation detail exists (the
    # paper's fidelity argument), and the total result space grows with
    # fidelity.
    assert conceptual.total_counts()[RecordKind.VULNERABILITY] == 0
    assert logical.total_counts()[RecordKind.VULNERABILITY] == 0
    assert implementation.total_counts()[RecordKind.VULNERABILITY] > 0
    assert conceptual.total <= logical.total <= implementation.total
    # Abstract models still relate to attack patterns and weaknesses.
    assert conceptual.total_counts()[RecordKind.ATTACK_PATTERN] > 0


def test_filtering_then_analysis_pipeline(centrifuge_association):
    filtered = FilterPipeline([by_severity("High")]).apply(centrifuge_association)
    metrics_all = compute_posture(centrifuge_association)
    metrics_filtered = compute_posture(filtered)
    assert metrics_filtered.total < metrics_all.total
    assert metrics_filtered.system_posture_index < metrics_all.system_posture_index
    # Ranking still identifies a worst component.
    assert metrics_filtered.ranking_by_posture()[0].posture_index > 0


def test_whatif_and_chains_and_consequences_together(engine, centrifuge_model):
    variant = hardened_workstation_variant(centrifuge_model)
    comparison = WhatIfStudy(engine).compare(centrifuge_model, variant)
    assert comparison.variant_is_better

    association = engine.associate(centrifuge_model)
    chains = find_exploit_chains(association, "BPCS Platform")
    assert chains

    mapper = ConsequenceMapper(duration_s=300.0)
    assessments = mapper.assess("CWE-78", "BPCS Platform")
    assert any(a.safety_hazard for a in assessments)
    text = render_whatif(comparison)
    assert "better posture" in text


def test_baseline_comparison_end_to_end(centrifuge_model, centrifuge_association):
    stride = StrideAnalyzer().analyze(centrifuge_model)
    tree = build_attack_tree(centrifuge_association, "SIS Platform")
    mapper = ConsequenceMapper(duration_s=300.0)
    assessments = mapper.assess("CWE-693", "SIS Platform")
    coverage = compare_coverage(centrifuge_model, centrifuge_association, stride, tree, assessments)
    cpsec = coverage.approach("Model-based CPS security (this work)")
    stride_coverage = coverage.approach("STRIDE (IT-centric)")
    assert cpsec.distinct_hazards_identified > stride_coverage.distinct_hazards_identified
    assert stride_coverage.findings > 0


def test_uav_pipeline_reuses_everything(small_corpus):
    from repro.casestudies.uav import build_uav_model

    uav = build_uav_model()
    engine = SearchEngine(small_corpus)
    association = engine.associate(uav)
    metrics = compute_posture(association)
    assert metrics.total > 0
    chains = find_exploit_chains(association, "Flight Controller")
    assert chains
    tree = build_attack_tree(association, "Flight Controller")
    assert tree.leaf_count() > 0

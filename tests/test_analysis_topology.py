"""Tests for topological analysis of system models."""

import pytest

from repro.analysis.topology import (
    analyze_topology,
    segmentation_effectiveness,
    single_points_of_failure,
)
from repro.casestudies.uav import build_uav_model
from repro.graph.model import Component, Connection, SystemGraph


def test_report_covers_every_component(centrifuge_model):
    report = analyze_topology(centrifuge_model)
    assert report.system_name == centrifuge_model.name
    assert {c.name for c in report.components} == set(centrifuge_model.component_names())
    with pytest.raises(KeyError):
        report.component("missing")


def test_attack_surface_is_the_entry_points(centrifuge_model):
    report = analyze_topology(centrifuge_model)
    assert report.attack_surface == ("Corporate Network",)


def test_firewall_is_the_boundary_component(centrifuge_model):
    report = analyze_topology(centrifuge_model)
    assert report.boundary_components == ("Control Firewall",)


def test_firewall_is_an_articulation_point(centrifuge_model):
    spofs = single_points_of_failure(centrifuge_model)
    assert "Control Firewall" in spofs
    assert "Programming WS" in spofs
    # The plant is a leaf, never an articulation point.
    assert "Centrifuge" not in spofs


def test_choke_points_have_positive_betweenness(centrifuge_model):
    report = analyze_topology(centrifuge_model)
    chokes = report.choke_points()
    assert chokes
    assert all(c.betweenness > 0 for c in chokes)
    assert all(c.is_articulation_point for c in chokes)


def test_betweenness_ranking_puts_controllers_above_leaves(centrifuge_model):
    report = analyze_topology(centrifuge_model)
    ranking = [c.name for c in report.ranking_by_betweenness()]
    assert ranking.index("Programming WS") < ranking.index("Centrifuge")
    assert ranking.index("BPCS Platform") < ranking.index("Corporate Network")


def test_exposure_and_reachability_fields(centrifuge_model):
    report = analyze_topology(centrifuge_model)
    corporate = report.component("Corporate Network")
    assert corporate.exposure_distance == 0
    assert corporate.reachable_components == len(centrifuge_model) - 1
    sensor = report.component("Temperature Sensor")
    assert sensor.degree == 3


def test_segmentation_effectiveness(centrifuge_model):
    distances = segmentation_effectiveness(centrifuge_model, "BPCS Platform")
    assert distances == {"Corporate Network": 3}
    with pytest.raises(KeyError):
        segmentation_effectiveness(centrifuge_model, "missing")


def test_segmentation_unreachable_is_minus_one():
    graph = SystemGraph()
    graph.add_component(Component("entry", entry_point=True))
    graph.add_component(Component("island"))
    assert segmentation_effectiveness(graph, "island") == {"entry": -1}


def test_two_node_graph_has_no_articulation_points():
    graph = SystemGraph()
    graph.add_component(Component("a", entry_point=True))
    graph.add_component(Component("b"))
    graph.connect(Connection("a", "b"))
    report = analyze_topology(graph)
    assert not any(c.is_articulation_point for c in report.components)


def test_uav_topology():
    report = analyze_topology(build_uav_model())
    assert "Flight Controller" in single_points_of_failure(build_uav_model())
    assert set(report.attack_surface) == {"Ground Control Station", "Telemetry Radio"}

"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools/pip
combination cannot build PEP 660 editable wheels (no ``wheel`` package, no
network to fetch build requirements).

Testing and the perf gate (see README.md):

* quick tier:  ``PYTHONPATH=src python -m pytest -q -m "not slow"``
* full tier-1: ``PYTHONPATH=src python -m pytest -x -q``
* perf gate:   ``PYTHONPATH=src python -m pytest benchmarks -q`` (paper-scale
  corpus; ``CPSEC_BENCH_SCALE`` shrinks it for smoke runs)
"""

from setuptools import setup

setup()

"""Compare benchmark JSON twins against committed baselines.

CI's benchmark-regression job reruns the benchmark suite at smoke scale into
a scratch directory and then runs this script: every timing in a candidate
twin is compared against the same-named timing in the committed baseline of
the same benchmark, and the job fails when any timing regressed by more than
the tolerance (default 30%).

Rules that keep the check honest on shared runners:

* baselines and candidates are only compared when they were measured at the
  **same corpus scale** (a scale-1.0 baseline says nothing about a 0.1 run),
* timings below ``--min-seconds`` (default 5 ms) are ignored -- at that
  magnitude the check would measure scheduler noise, not the code,
* the gate is **machine-calibrated**: the committed baselines were measured
  on whatever box the author used, so every candidate/baseline ratio is
  first normalized by the suite-wide *median* ratio.  A runner that is
  uniformly 2x slower gets a median of ~2.0 and passes; only timings that
  regressed relative to the rest of the suite trip the gate
  (``--no-calibrate`` restores absolute comparison for same-machine runs),
* new benchmarks (no committed baseline yet) and new timing keys are skipped
  with a printed reason -- adding a benchmark lands in one step; a *missing*
  candidate for an existing baseline fails, so a benchmark cannot silently
  disappear.

Usage::

    python benchmarks/check_regression.py \\
        --baseline benchmarks/results/smoke --candidate /tmp/bench-results \\
        [--tolerance 0.30] [--min-seconds 0.005]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _flatten_timings(payload, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf under a ``timings``-like subtree, dotted-keyed."""
    flat: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            flat.update(_flatten_timings(value, f"{prefix}{key}."))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            flat.update(_flatten_timings(value, f"{prefix}{index}."))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        flat[prefix.rstrip(".")] = float(payload)
    return flat


def _timings(twin: dict) -> dict[str, float]:
    """The comparable timings of one result twin.

    Covers both the flat ``timings`` dict most benchmarks emit and the
    ``measurements: [{scale, timings}]`` list of the scaling benchmark
    (rows are matched by their recorded scale).
    """
    flat: dict[str, float] = {}
    if isinstance(twin.get("timings"), (dict, list)):
        flat.update(_flatten_timings(twin["timings"], "timings."))
    for row in twin.get("measurements") or []:
        if isinstance(row, dict) and isinstance(row.get("timings"), dict):
            flat.update(
                _flatten_timings(row["timings"], f"scale[{row.get('scale')}].")
            )
    return flat


def compare(
    baseline_dir: Path,
    candidate_dir: Path,
    tolerance: float,
    min_seconds: float,
    calibrate: bool = True,
) -> list[str]:
    """Every regression message (empty means the gate passes)."""
    failures: list[str] = []
    ratios: list[tuple[str, str, float, float]] = []
    baseline_names = {path.name for path in baseline_dir.glob("*.json")}
    for candidate_path in sorted(candidate_dir.glob("*.json")):
        if candidate_path.name not in baseline_names:
            # A brand-new benchmark lands in one step: its first run has no
            # committed smoke baseline yet, which is a skip, not a failure.
            print(
                f"skip {candidate_path.name}: no committed baseline yet "
                "(new benchmark)"
            )
    for baseline_path in sorted(baseline_dir.glob("*.json")):
        candidate_path = candidate_dir / baseline_path.name
        if not candidate_path.exists():
            failures.append(
                f"{baseline_path.name}: candidate result missing "
                "(benchmark disappeared?)"
            )
            continue
        try:
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
            candidate = json.loads(candidate_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            # An unreadable twin (torn write, foreign junk) must surface as a
            # skip with a reason, not as a traceback that masks real results.
            print(f"skip {baseline_path.name}: unreadable twin ({error})")
            continue
        if baseline.get("scale") != candidate.get("scale"):
            print(
                f"skip {baseline_path.name}: scale "
                f"{candidate.get('scale')} != baseline {baseline.get('scale')}"
            )
            continue
        baseline_timings = _timings(baseline)
        candidate_timings = _timings(candidate)
        for key, base_value in sorted(baseline_timings.items()):
            cand_value = candidate_timings.get(key)
            if cand_value is None:
                continue  # renamed/removed timing: not a regression signal
            if base_value < min_seconds and cand_value < min_seconds:
                continue
            ratios.append(
                (baseline_path.name, key, base_value, cand_value)
            )
    speed_factor = 1.0
    if calibrate and ratios:
        ordered = sorted(cand / base for _, _, base, cand in ratios)
        speed_factor = ordered[len(ordered) // 2]
        print(
            f"machine calibration: median candidate/baseline ratio "
            f"{speed_factor:.2f}"
        )
    allowed = speed_factor * (1.0 + tolerance)
    for name, key, base_value, cand_value in ratios:
        if cand_value > base_value * allowed:
            failures.append(
                f"{name}: {key} regressed "
                f"{base_value:.4f}s -> {cand_value:.4f}s "
                f"({cand_value / base_value:.2f}x vs allowed "
                f"{allowed:.2f}x = median {speed_factor:.2f} "
                f"+ {tolerance * 100:.0f}% tolerance)"
            )
    print(f"compared {len(ratios)} timings against {baseline_dir}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--candidate", required=True, type=Path)
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative slowdown (default 0.30 = 30%%)")
    parser.add_argument("--min-seconds", type=float, default=0.005,
                        help="ignore timings below this (noise floor)")
    parser.add_argument("--no-calibrate", action="store_true",
                        help="compare absolute timings (same-machine runs)")
    args = parser.parse_args(argv)
    if not args.baseline.is_dir():
        print(f"baseline directory not found: {args.baseline}", file=sys.stderr)
        return 2
    failures = compare(
        args.baseline,
        args.candidate,
        args.tolerance,
        args.min_seconds,
        calibrate=not args.no_calibrate,
    )
    for failure in failures:
        print(f"REGRESSION {failure}", file=sys.stderr)
    if failures:
        return 1
    print("no benchmark regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Zero-copy mmap cold load versus eager deserialization, across scales.

The v2 artifact is page-aligned and offset-addressed, so
``Workspace.load(path, mmap=True)`` only parses the ~100-byte header: the
posting matrices become ``numpy`` views over mapped pages on first engine
use, and the corpus JSON stays untouched until someone reads it.  This
benchmark pins the two claims that justify the format:

* the mmap cold load is **near-constant in corpus scale** (the eager load is
  linear), and at paper scale at least 5x faster,
* the mapped engine is **bit-identical** to the eager engine -- the fast
  path changes bytes never, only when they are paid for.

A third, unasserted measurement records the memory story: per-process RSS
delta after loading + warming, eager versus mapped, measured in a fresh
subprocess each (on a multi-worker host the mapped pages are additionally
*shared* page cache, so N workers pay the delta once, not N times).
"""

from __future__ import annotations

import gc
import json
import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
from helpers_equivalence import association_signature  # noqa: E402

from repro.analysis.report import render_table  # noqa: E402
from repro.casestudies.centrifuge import build_centrifuge_model  # noqa: E402
from repro.workspace import Workspace  # noqa: E402

#: Subprocess snippet: load an artifact one way, warm the engine, report the
#: RSS delta attributable to the load (VmRSS from /proc/self/status, in kB).
_RSS_PROBE = """
import json, sys
from repro.casestudies.centrifuge import build_centrifuge_model
from repro.workspace import Workspace

def rss_kb():
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0

path, mode = sys.argv[1], sys.argv[2]
before = rss_kb()
workspace = Workspace.load(path, mmap=(mode == "mmap"))
workspace.engine().associate(build_centrifuge_model())
print(json.dumps({"mode": mode, "rss_delta_kb": rss_kb() - before}))
"""


def _measure_load(path: Path, *, mmap: bool) -> float:
    """Best-of-2 cold ``Workspace.load`` wall time (gc fenced off)."""
    best = float("inf")
    for _ in range(2):
        gc.collect()
        start = time.perf_counter()
        Workspace.load(path, mmap=mmap)
        best = min(best, time.perf_counter() - start)
    return best


def _rss_delta(path: Path, mode: str) -> int | None:
    if not Path("/proc/self/status").exists():
        return None
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parent.parent / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, str(path), mode],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    if result.returncode != 0:
        return None
    return json.loads(result.stdout)["rss_delta_kb"]


def test_mmap_cold_load_scaling_and_bit_identity(
    bench_scale, record_result, tmp_path
):
    model = build_centrifuge_model()
    # A 4x span (not 5x): scale 0.2 is unbuildable -- a synthetic CVE serial
    # collides with a real seed identifier exactly there.
    small_scale = bench_scale / 4.0
    artifacts: dict[float, Path] = {}
    for scale in (small_scale, bench_scale):
        path = tmp_path / f"ws-{scale:g}.cpsecws"
        Workspace.build(scale=scale, seed=7).save(path)
        artifacts[scale] = path

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        timings = {
            scale: {
                "eager_load": _measure_load(path, mmap=False),
                "mmap_load": _measure_load(path, mmap=True),
            }
            for scale, path in artifacts.items()
        }
    finally:
        if gc_was_enabled:
            gc.enable()

    # Bit-identity at benchmark scale: mapped engine == eager engine.
    big = artifacts[bench_scale]
    reference = association_signature(
        Workspace.load(big).engine().associate(model)
    )
    assert association_signature(
        Workspace.load(big, mmap=True).engine().associate(model)
    ) == reference

    speedup = (
        timings[bench_scale]["eager_load"] / timings[bench_scale]["mmap_load"]
    )
    # How much the mmap cold load grew when the corpus grew 4x (the eager
    # load grows ~linearly; near-constant means this stays around 1x).
    mmap_growth = (
        timings[bench_scale]["mmap_load"] / timings[small_scale]["mmap_load"]
    )
    eager_growth = (
        timings[bench_scale]["eager_load"] / timings[small_scale]["eager_load"]
    )

    rss = {
        "eager_kb": _rss_delta(big, "eager"),
        "mmap_kb": _rss_delta(big, "mmap"),
    }

    rows = [
        (
            f"{scale:g}",
            f"{timing['eager_load'] * 1e3:.1f}",
            f"{timing['mmap_load'] * 1e3:.1f}",
            f"{timing['eager_load'] / timing['mmap_load']:.1f}x",
        )
        for scale, timing in sorted(timings.items())
    ]
    lines = [
        f"corpus scale: {bench_scale} (and {small_scale:g} for the growth check)",
        f"artifact size at scale {bench_scale}: {big.stat().st_size / 1e6:.1f} MB",
        f"mmap cold-load speedup at scale {bench_scale}: {speedup:.1f}x "
        "(floor at paper scale: 5x)",
        f"load-time growth over a 4x corpus: eager {eager_growth:.1f}x, "
        f"mmap {mmap_growth:.1f}x (near-constant)",
        f"RSS delta after load+associate: eager {rss['eager_kb']} kB, "
        f"mmap {rss['mmap_kb']} kB (mapped pages are shared page cache "
        f"across workers; host has {os.cpu_count()} CPU(s))",
        "mmap engine bit-identical to eager: yes",
        "",
        render_table(
            ("Scale", "Eager load [ms]", "mmap load [ms]", "Speedup"), rows
        ),
    ]
    record_result(
        "mmap_cold_start",
        "\n".join(lines),
        data={
            "artifact_bytes": big.stat().st_size,
            "timings": {
                "eager_load": timings[bench_scale]["eager_load"],
                "mmap_load": timings[bench_scale]["mmap_load"],
                "eager_load_small": timings[small_scale]["eager_load"],
                "mmap_load_small": timings[small_scale]["mmap_load"],
            },
            "speedup": speedup,
            "mmap_growth_over_4x_corpus": mmap_growth,
            "eager_growth_over_4x_corpus": eager_growth,
            "rss_delta_kb": rss,
            "bit_identical": True,
            "host_cpus": os.cpu_count(),
        },
    )

    # Acceptance floors, enforced at paper scale only (smoke-scale loads are
    # fractions of a millisecond -- scheduler noise, not signal): the mmap
    # cold load is at least 5x faster than eager, and near-constant where
    # the eager load is linear (well under the 4x corpus growth).
    if bench_scale >= 1.0:
        assert speedup >= 5.0
        assert mmap_growth < 2.5
        assert mmap_growth < eager_growth

"""Performance of the closed-loop SCADA simulation substrate.

The consequence mapper re-runs the plant simulation once per (record,
scenario) pair, so simulation throughput bounds how many associated attack
vectors can be given consequence evidence in an analysis session.  The
benchmark measures steps/second of the closed loop and the cost of a full
consequence assessment for the paper's CWE-78 example.
"""

from __future__ import annotations

import gc
import time

from repro.attacks.consequence import ConsequenceMapper
from repro.cps.scada import ScadaSimulation

DURATION_S = 420.0
DT = 0.5


def test_closed_loop_simulation_throughput(benchmark, record_result):
    def run():
        return ScadaSimulation().run(DURATION_S, DT)

    trace = benchmark(run)
    steps = len(trace)

    # Earlier benchmarks leave millions of live objects in session fixtures;
    # collector sweeps triggered by the allocation-heavy simulation loop
    # would otherwise dominate these single-sample timings (best-of-2 guards
    # the recorded number against one-off scheduler stalls on shared hosts).
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        elapsed = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            ScadaSimulation().run(DURATION_S, DT)
            elapsed = min(elapsed, time.perf_counter() - start)
        steps_per_second = steps / elapsed

        start = time.perf_counter()
        mapper = ConsequenceMapper(duration_s=DURATION_S, dt=DT)
        assessments = mapper.assess("CWE-78", "BPCS Platform")
        assessment_time = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()

    record_result(
        "simulation_performance",
        "\n".join(
            [
                f"closed-loop steps per run: {steps}",
                f"steps per second: {steps_per_second:.0f}",
                f"CWE-78 consequence assessment ({len(assessments)} scenarios + baseline): "
                f"{assessment_time:.2f} s",
            ]
        ),
        data={
            "timings": {
                "steps_per_second": steps_per_second,
                "assessment_time": assessment_time,
            },
            "record_counts": {"steps_per_run": steps, "scenarios": len(assessments)},
        },
    )

    # The simulation must be fast enough that consequence mapping over the
    # handful of scenario-covered records is an interactive operation.
    assert steps_per_second > 2_000
    assert assessment_time < 30.0
    assert assessments

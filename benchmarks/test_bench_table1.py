"""E1 -- Table 1: attack vectors associated with each SCADA attribute.

The paper's Table 1 reports, per attribute of the demonstration model, the
number of associated attack patterns, weaknesses, and vulnerabilities:

    Cisco ASA          2 / 1 / 3776
    NI RT Linux OS    54 / 75 / 9673
    Windows 7         41 / 73 / 6627
    Labview            0 / 0 / 6
    NI cRIO 9063       0 / 0 / 7
    NI cRIO 9064       0 / 0 / 7

The benchmark regenerates the table from the synthetic corpus at the
configured scale and asserts the *shape*: which attributes dominate and by
roughly what ratio.  Timing of the association step is reported via
pytest-benchmark.
"""

from __future__ import annotations

from repro.analysis.report import render_table1
from repro.search.engine import SearchEngine

#: The paper's published rows (attack patterns, weaknesses, vulnerabilities).
PAPER_TABLE1 = {
    "Cisco ASA": (2, 1, 3776),
    "NI RT Linux OS": (54, 75, 9673),
    "Windows 7": (41, 73, 6627),
    "Labview": (0, 0, 6),
    "NI cRIO 9063": (0, 0, 7),
    "NI cRIO 9064": (0, 0, 7),
}


def test_table1_reproduction(benchmark, corpus, centrifuge_model, bench_scale, record_result):
    engine = SearchEngine(corpus)

    association = benchmark.pedantic(
        lambda: engine.associate(centrifuge_model), rounds=3, iterations=1
    )

    rows = {row["attribute"]: row for row in association.attribute_table()}
    lines = [f"corpus scale: {bench_scale}", "",
             f"{'Attribute':<16} {'paper AP/CWE/CVE':>20} {'measured AP/CWE/CVE':>22}"]
    for name, (ap, cwe, cve) in PAPER_TABLE1.items():
        row = rows[name]
        lines.append(
            f"{name:<16} {ap:>6}/{cwe:>4}/{cve:>6} "
            f"{row['attack_patterns']:>8}/{row['weaknesses']:>4}/{row['vulnerabilities']:>6}"
        )
    lines.append("")
    lines.append(render_table1(association))
    record_result("table1", "\n".join(lines))

    # Shape assertions (scale-invariant ordering from the paper's table).
    vulns = {name: rows[name]["vulnerabilities"] for name in PAPER_TABLE1}
    assert vulns["NI RT Linux OS"] > vulns["Windows 7"] > vulns["Cisco ASA"]
    assert vulns["Cisco ASA"] > 50 * vulns["Labview"]
    assert vulns["NI cRIO 9063"] <= 30
    assert vulns["NI cRIO 9064"] <= 30

    # OS attributes relate to many weaknesses/patterns; narrow products to few.
    assert rows["Windows 7"]["weaknesses"] > 10 * max(1, rows["Labview"]["weaknesses"])
    assert rows["NI RT Linux OS"]["weaknesses"] > rows["Cisco ASA"]["weaknesses"]
    assert rows["NI cRIO 9063"]["attack_patterns"] <= 2

    # At paper scale, the vulnerability columns should be within 15% of the
    # published values (the populations are generated at the published sizes;
    # matching recovers nearly all of them).
    if bench_scale == 1.0:
        for name in ("Cisco ASA", "NI RT Linux OS", "Windows 7"):
            paper_value = PAPER_TABLE1[name][2]
            measured = vulns[name]
            assert abs(measured - paper_value) / paper_value < 0.15

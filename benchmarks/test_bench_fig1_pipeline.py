"""E2 -- Fig. 1: the end-to-end demonstration pipeline.

The paper's Fig. 1 shows the toolchain: a SysML system model is exported to a
general graph model (GraphML), the search engine associates attack-vector
data with it, and the dashboard merges the two for analysis.  This benchmark
runs that whole pipeline and reports the size of the merged artifact, which
is the paper's headline observation ("the total number of attack vectors
returned by the search process is large").
"""

from __future__ import annotations

from repro.analysis.metrics import compute_posture
from repro.analysis.report import render_posture_report
from repro.casestudies.centrifuge import build_centrifuge_sysml
from repro.corpus.schema import RecordKind
from repro.graph.graphml import from_graphml_string, to_graphml_string
from repro.search.engine import SearchEngine


def run_pipeline(corpus):
    diagram = build_centrifuge_sysml()
    model = from_graphml_string(to_graphml_string(diagram.to_system_graph()))
    engine = SearchEngine(corpus)
    association = engine.associate(model)
    metrics = compute_posture(association)
    return association, metrics


def test_fig1_pipeline(benchmark, corpus, bench_scale, record_result):
    association, metrics = benchmark.pedantic(
        lambda: run_pipeline(corpus), rounds=2, iterations=1
    )

    totals = association.total_counts()
    lines = [
        f"corpus scale: {bench_scale}",
        f"components: {len(association.components)}",
        f"associated attack patterns: {totals[RecordKind.ATTACK_PATTERN]}",
        f"associated weaknesses: {totals[RecordKind.WEAKNESS]}",
        f"associated vulnerabilities: {totals[RecordKind.VULNERABILITY]}",
        f"total associated records: {association.total}",
        "",
        render_posture_report(association, metrics),
    ]
    record_result(
        "fig1_pipeline",
        "\n".join(lines),
        data={
            "record_counts": {
                "components": len(association.components),
                "attack_patterns": totals[RecordKind.ATTACK_PATTERN],
                "weaknesses": totals[RecordKind.WEAKNESS],
                "vulnerabilities": totals[RecordKind.VULNERABILITY],
                "total": association.total,
            },
        },
    )

    # The merged artifact must exist for every component and be "large" --
    # the paper's motivation for filtering.
    assert len(association.components) == 7
    assert association.total > 100 * bench_scale
    # Every cyber component of the control network carries associations.
    for name in ("Control Firewall", "Programming WS", "SIS Platform", "BPCS Platform"):
        assert association.component(name).total > 0
    # The dashboard summary identifies the controllers/workstation as the
    # dominant contributors, not the physical process.
    ranking = [name for name, _ in association.component_ranking()]
    assert ranking.index("Centrifuge") > 2

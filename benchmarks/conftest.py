"""Shared fixtures and result recording for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts (Table 1,
the Fig. 1 pipeline, or a claim made in Sections 2-3; see DESIGN.md's
experiment index) and records the values it measured under
``benchmarks/results/`` so EXPERIMENTS.md can be checked against actual runs.

Each recorded result produces two files: the human-readable ``<name>.txt``
and a machine-readable ``<name>.json`` (schema: ``benchmark``, ``scale``,
plus whatever structured ``data`` -- timings, record counts -- the benchmark
passes), so the perf trajectory can be tracked across PRs by tooling instead
of by parsing prose.

The corpus scale defaults to the paper-equivalent 1.0 (about 22k synthetic
vulnerabilities); set ``CPSEC_BENCH_SCALE`` to a smaller value for quick runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.casestudies.centrifuge import build_centrifuge_model
from repro.corpus.synthesis import build_corpus
from repro.ioutils import atomic_write_text
from repro.search.engine import SearchEngine

#: Schema version of the JSON result files.
RESULT_SCHEMA_VERSION = 1

#: Corpus scale used by the benchmarks (1.0 = paper-scale populations).
BENCH_SCALE = float(os.environ.get("CPSEC_BENCH_SCALE", "1.0"))

#: Where result twins land.  CI's benchmark-regression job points this at a
#: scratch directory so a run can be compared against the committed
#: baselines without overwriting them.
RESULTS_DIR = Path(
    os.environ.get(
        "CPSEC_BENCH_RESULTS_DIR", str(Path(__file__).parent / "results")
    )
)


def pytest_collection_modifyitems(items):
    """Mark every benchmark ``slow`` so ``-m "not slow"`` keeps tier-1 quick."""
    for item in items:
        if item.path and item.path.is_relative_to(Path(__file__).parent):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """The corpus scale in use (recorded into every result file)."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def corpus():
    """Seed + synthetic corpus at benchmark scale."""
    return build_corpus(scale=BENCH_SCALE, seed=7)


@pytest.fixture(scope="session")
def engine(corpus):
    """A search engine over the benchmark corpus (indexes prebuilt)."""
    return SearchEngine(corpus)


@pytest.fixture(scope="session")
def centrifuge_model():
    """The implementation-fidelity centrifuge model."""
    return build_centrifuge_model()


@pytest.fixture(scope="session")
def centrifuge_association(engine, centrifuge_model):
    """The associated centrifuge model at benchmark scale."""
    return engine.associate(centrifuge_model)


@pytest.fixture(scope="session")
def record_result():
    """Write a named result artifact under ``benchmarks/results/``.

    Emits ``<name>.txt`` with the human-readable content and ``<name>.json``
    with ``{"schema_version", "benchmark", "scale", ...data}``; pass
    structured measurements (timings in seconds, record counts) via ``data``.
    Both files are written atomically.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _record(name: str, content: str, data: dict | None = None) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        atomic_write_text(path, content + "\n")
        payload = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "benchmark": name,
            "scale": BENCH_SCALE,
            **(data or {}),
        }
        atomic_write_text(
            RESULTS_DIR / f"{name}.json",
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        print(f"\n[{name}]\n{content}\n")
        return path

    return _record

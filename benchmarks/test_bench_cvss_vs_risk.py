"""E8 -- CVSS severity is not risk.

Section 2: "a common mistake is to use CVSS as a potential metric for risk.
However, CVSS only defines severity of a given vulnerability and not risk."

The benchmark contrasts three component rankings of the demonstration system:

* by maximum CVSS score of the associated vulnerabilities (the practice the
  paper warns against),
* by the qualitative posture index (counts weighted by exposure and
  criticality),
* by physical consequence (whether executable scenarios against the component
  reach a safety hazard).

The shape the paper implies: CVSS ranks the internet-adjacent IT asset(s) at
the top, while the consequence-aware view elevates the safety-critical
control and safety platforms whose compromise actually produces hazards.
"""

from __future__ import annotations

from repro.analysis.metrics import compute_posture
from repro.analysis.report import render_table
from repro.attacks.consequence import ConsequenceMapper


def build_rankings(centrifuge_association):
    metrics = compute_posture(centrifuge_association)
    by_cvss = [c.name for c in metrics.ranking_by_cvss()]
    by_posture = [c.name for c in metrics.ranking_by_posture()]

    mapper = ConsequenceMapper(duration_s=420.0)
    consequence_rows = {}
    for record, component in (
        ("CWE-78", "BPCS Platform"),
        ("CWE-693", "SIS Platform"),
        ("CWE-522", "Programming WS"),
        ("CWE-284", "Control Firewall"),
    ):
        assessments = mapper.assess(record, component)
        consequence_rows[component] = any(a.safety_hazard for a in assessments)
    return metrics, by_cvss, by_posture, consequence_rows


def test_cvss_vs_consequence_ranking(benchmark, centrifuge_association, bench_scale, record_result):
    metrics, by_cvss, by_posture, consequences = benchmark.pedantic(
        lambda: build_rankings(centrifuge_association), rounds=1, iterations=1
    )

    rows = []
    for component in metrics.components:
        rows.append(
            (
                component.name,
                f"{component.max_cvss:.1f}",
                by_cvss.index(component.name) + 1,
                f"{component.posture_index:.1f}",
                by_posture.index(component.name) + 1,
                "yes" if consequences.get(component.name) else "-",
            )
        )
    table = render_table(
        ("Component", "Max CVSS", "CVSS rank", "Posture index", "Posture rank",
         "Safety hazard reachable"),
        rows,
    )
    record_result("cvss_vs_risk", f"corpus scale: {bench_scale}\n\n{table}")

    # CVSS severity saturates: several components share near-critical maxima,
    # so it cannot discriminate between them...
    critical_components = [c for c in metrics.components if c.max_cvss >= 9.0]
    assert len(critical_components) >= 3
    # ...and the two rankings disagree.
    assert by_cvss != by_posture

    # The components whose compromise produces a *safety* hazard (BPCS, SIS)
    # are not the CVSS leader -- severity alone would misdirect attention.
    cvss_leader = by_cvss[0]
    assert consequences["BPCS Platform"] or consequences["SIS Platform"]
    hazardous = {name for name, hazard in consequences.items() if hazard}
    assert cvss_leader not in hazardous or len(hazardous) > 1

"""Service latency: warm requests in-process and over HTTP, plus cold start.

The acceptance bar for the service redesign: a long-lived service loaded
from a workspace artifact answers a **warm** ``associate`` request in under
50 ms at corpus scale 1.0, and a **cold** service (fresh process, artifact
on disk) still answers its first request in under a second via
``Workspace.load``.  The HTTP numbers quantify what the transport costs on
top of the in-process path (same service object, same responses -- the
equivalence suite proves them byte-identical).
"""

import statistics
import threading
import time

import pytest

from repro.corpus.synthesis import build_params
from repro.service import (
    AnalysisService,
    AssociateRequest,
    ServiceClient,
    canonical_json,
    start_server,
)
from repro.workspace import Workspace

#: Warm requests measured per transport.
REQUEST_COUNT = 30


@pytest.fixture(scope="module")
def warm_workspace(engine, bench_scale):
    """The benchmark engine wrapped as a workspace the service can serve.

    ``from_engine`` records no corpus parameters (it cannot know them), so
    they are attached here -- the corpus fixture is built with exactly these
    -- letting the service route scale-matching requests to this workspace.
    """
    workspace = Workspace.from_engine(engine)
    workspace.params = build_params(scale=bench_scale, seed=7, include_background=True)
    return workspace


def _timed(callable_, count: int) -> list[float]:
    times = []
    for _ in range(count):
        start = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - start)
    return times


def test_bench_service_requests(
    warm_workspace, bench_scale, record_result, tmp_path_factory
):
    service = AnalysisService(workspace=warm_workspace)
    request = AssociateRequest(scale=bench_scale)

    start = time.perf_counter()
    reference = service.associate(request)
    first_request_s = time.perf_counter() - start

    in_process = _timed(lambda: service.associate(request), REQUEST_COUNT)

    # The same requests with response caching disabled: engine caches are
    # warm, but posture metrics are recomputed per request.  This is the
    # latency a *distinct* (never-seen) request pays on a warm engine.
    uncached_service = AnalysisService(
        workspace=warm_workspace, max_response_cache_entries=0
    )
    uncached_service.associate(request)
    uncached = _timed(lambda: uncached_service.associate(request), REQUEST_COUNT)

    server = start_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        client.associate(request)  # connection + serialization warm-up
        wall_start = time.perf_counter()
        http = _timed(lambda: client.associate(request), REQUEST_COUNT)
        http_wall_s = time.perf_counter() - wall_start
        http_rps = REQUEST_COUNT / http_wall_s
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    # Cold start: a fresh service over the artifact on disk, timed to its
    # first answered request (load + fit + cold association, no synthesis).
    artifact = tmp_path_factory.mktemp("service_bench") / "bench.cpsecws"
    warm_workspace.save(artifact)
    start = time.perf_counter()
    cold_service = AnalysisService(workspace=artifact, save_artifacts=False)
    cold_response = cold_service.associate(request)
    cold_start_s = time.perf_counter() - start
    assert canonical_json(cold_response.to_dict()) == canonical_json(
        reference.to_dict()
    )

    warm_in_process_s = statistics.median(in_process)
    warm_uncached_s = statistics.median(uncached)
    warm_http_s = statistics.median(http)
    content = "\n".join(
        [
            f"corpus scale:                {bench_scale}",
            f"first request (engine warm): {first_request_s * 1000:.1f} ms",
            f"warm associate, in-process:  {warm_in_process_s * 1000:.3f} ms (median of {REQUEST_COUNT})",
            f"warm associate, no resp. cache: {warm_uncached_s * 1000:.3f} ms (median of {REQUEST_COUNT})",
            f"warm associate, HTTP:        {warm_http_s * 1000:.3f} ms (median of {REQUEST_COUNT})",
            f"HTTP throughput:             {http_rps:.0f} requests/s (sequential)",
            f"cold start from artifact:    {cold_start_s * 1000:.1f} ms (load + first request)",
        ]
    )
    record_result(
        "service_latency",
        content,
        data={
            "request_count": REQUEST_COUNT,
            "first_request_s": first_request_s,
            "warm_in_process_s": warm_in_process_s,
            "warm_in_process_min_s": min(in_process),
            "warm_uncached_s": warm_uncached_s,
            "warm_http_s": warm_http_s,
            "warm_http_min_s": min(http),
            "http_requests_per_s": http_rps,
            "cold_start_s": cold_start_s,
        },
    )

    # Acceptance floors: warm requests under 50 ms on either transport, and
    # (at paper scale and below) a sub-second artifact cold start.
    assert warm_in_process_s < 0.05
    assert warm_http_s < 0.05
    if bench_scale <= 1.0:
        assert cold_start_s < 1.0

"""E7 -- IT-centric baselines vs. the consequence-aware pipeline.

Sections 1-2: "modeling attacks in Microsoft's threat modeling tool or attack
trees assumes that the system must be a collection of IT infrastructure with
no physical interactions ... This narrow focus does not allow for the
modeling of the physical interactions with the system under design and,
therefore, cannot map threats to environmental consequences."

The benchmark runs STRIDE-per-element and attack-tree analysis on the same
model and contrasts their coverage with the model-based pipeline: how many
findings, how many components covered (including the physical ones), and --
the decisive column -- how many findings connect to a process hazard.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.attacks.consequence import ConsequenceMapper
from repro.baselines.attack_trees import build_attack_tree
from repro.baselines.comparison import compare_coverage
from repro.baselines.stride import StrideAnalyzer


def run_comparison(centrifuge_model, centrifuge_association):
    stride = StrideAnalyzer().analyze(centrifuge_model)
    tree = build_attack_tree(centrifuge_association, "BPCS Platform")
    mapper = ConsequenceMapper(duration_s=420.0)
    assessments = []
    for record, component in (
        ("CWE-78", "BPCS Platform"),
        ("CWE-693", "SIS Platform"),
        ("CWE-345", "Temperature Sensor"),
        ("CWE-306", "BPCS Platform"),
    ):
        assessments.extend(mapper.assess(record, component))
    return compare_coverage(centrifuge_model, centrifuge_association, stride, tree, assessments)


def test_baseline_coverage(benchmark, centrifuge_model, centrifuge_association,
                           bench_scale, record_result):
    coverage = benchmark.pedantic(
        lambda: run_comparison(centrifuge_model, centrifuge_association),
        rounds=1, iterations=1,
    )

    table = render_table(
        ("Approach", "Findings", "Components", "Physical comps",
         "Findings w/ physical consequence", "Distinct hazards"),
        coverage.as_rows(),
    )
    record_result("baseline_coverage", f"corpus scale: {bench_scale}\n\n{table}")

    stride = coverage.approach("STRIDE (IT-centric)")
    tree = coverage.approach("Attack tree")
    cpsec = coverage.approach("Model-based CPS security (this work)")

    # The baselines produce plenty of findings...
    assert stride.findings > 30
    assert tree.findings > 5
    # ...but none of them connect to a physical consequence.
    assert stride.findings_with_physical_consequence == 0
    assert tree.findings_with_physical_consequence == 0
    assert stride.distinct_hazards_identified == 0
    assert tree.distinct_hazards_identified == 0
    # The model-based pipeline covers the physical process and reaches hazards.
    assert cpsec.findings_with_physical_consequence > 0
    assert cpsec.distinct_hazards_identified >= 2
    assert cpsec.physical_components_covered >= 1
    assert cpsec.physical_components_covered >= stride.physical_components_covered

"""Observability overhead: the instrumented warm path vs. the bare one.

The acceptance bar for the observability layer: metrics + tracing on the
warm in-process request path cost **at most 10%** over a service built with
``enable_metrics=False`` (the exact pre-observability code path, kept
verbatim behind that flag).  Measured on the response-cache hit path --
the fastest request the service can serve, so the relative overhead is at
its worst there -- plus the cost of one ``/metrics`` render at realistic
registry size.

Measurements interleave instrumented and bare batches and compare the
per-batch minima: the minimum is the stable estimator of intrinsic cost at
microsecond scale, where medians still wobble with scheduler noise.
"""

import statistics
import time

import pytest

from repro.corpus.synthesis import build_params
from repro.obs.textparse import parse_exposition
from repro.obs.trace import trace
from repro.service import AnalysisService, AssociateRequest
from repro.workspace import Workspace

#: Warm requests per batch; batches of each variant interleave.
BATCH = 30
ROUNDS = 5

#: Absolute slack added to the 10% bound: at single-digit-microsecond warm
#: latencies, one stray cache miss is worth more than 10% of the whole
#: request, so a pure ratio would flake on noise rather than regressions.
EPSILON_S = 25e-6


@pytest.fixture(scope="module")
def warm_workspace(engine, bench_scale):
    workspace = Workspace.from_engine(engine)
    workspace.params = build_params(scale=bench_scale, seed=7, include_background=True)
    return workspace


def _timed(callable_, count: int) -> list[float]:
    times = []
    for _ in range(count):
        start = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - start)
    return times


def test_bench_obs_overhead(warm_workspace, bench_scale, record_result):
    instrumented = AnalysisService(workspace=warm_workspace)
    bare = AnalysisService(workspace=warm_workspace, enable_metrics=False)
    assert instrumented.metrics is not None
    assert bare.metrics is None
    request = AssociateRequest(scale=bench_scale)

    # Warm both services: engine caches, response caches, metric children.
    instrumented.associate(request)
    bare.associate(request)

    instrumented_times: list[float] = []
    bare_times: list[float] = []
    traced_times: list[float] = []
    for _ in range(ROUNDS):
        bare_times.extend(_timed(lambda: bare.associate(request), BATCH))
        instrumented_times.extend(
            _timed(lambda: instrumented.associate(request), BATCH)
        )
        with trace("bench-trace"):
            traced_times.extend(
                _timed(lambda: instrumented.associate(request), BATCH)
            )

    bare_best = min(bare_times)
    instrumented_best = min(instrumented_times)
    traced_best = min(traced_times)
    overhead_s = instrumented_best - bare_best
    overhead_pct = overhead_s / bare_best * 100.0

    # One /metrics render at the registry size a real server accumulates.
    render_times = _timed(lambda: instrumented.metrics.render(), 20)
    render_best = min(render_times)
    parse_exposition(instrumented.metrics.render())  # render stays valid

    content = "\n".join(
        [
            f"corpus scale:                  {bench_scale}",
            f"warm associate, bare:          {bare_best * 1e6:.1f} us (best of {ROUNDS * BATCH})",
            f"warm associate, instrumented:  {instrumented_best * 1e6:.1f} us (best of {ROUNDS * BATCH})",
            f"warm associate, traced:        {traced_best * 1e6:.1f} us (best of {ROUNDS * BATCH})",
            f"instrumentation overhead:      {overhead_s * 1e6:+.1f} us ({overhead_pct:+.1f}%)",
            f"/metrics render:               {render_best * 1e6:.1f} us (best of 20)",
        ]
    )
    record_result(
        "obs_overhead",
        content,
        data={
            "batch": BATCH,
            "rounds": ROUNDS,
            "bare_best_s": bare_best,
            "bare_median_s": statistics.median(bare_times),
            "instrumented_best_s": instrumented_best,
            "instrumented_median_s": statistics.median(instrumented_times),
            "traced_best_s": traced_best,
            "overhead_s": overhead_s,
            "overhead_pct": overhead_pct,
            "metrics_render_best_s": render_best,
        },
    )

    # The tentpole bound: instrumentation stays within 10% of the bare
    # path (plus an absolute epsilon that absorbs scheduler noise at
    # microsecond latencies).
    assert instrumented_best <= bare_best * 1.10 + EPSILON_S, (
        f"instrumented warm path {instrumented_best * 1e6:.1f}us exceeds "
        f"110% of bare {bare_best * 1e6:.1f}us"
    )
    # Tracing is opt-in per request; even traced, the path stays cheap.
    assert traced_best <= bare_best * 1.25 + 2 * EPSILON_S

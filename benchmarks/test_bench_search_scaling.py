"""Scaling of corpus construction, indexing, and association.

Supports the paper's tool-engineering argument (Section 2): for the what-if
loop to be interactive, re-running the association after a model change must
be fast even against a full-size vulnerability corpus.  The benchmark
measures corpus build, engine construction (indexing), and association time
at increasing corpus scales.
"""

from __future__ import annotations

import time

from repro.analysis.report import render_table
from repro.casestudies.centrifuge import build_centrifuge_model
from repro.corpus.synthesis import build_corpus
from repro.search.engine import SearchEngine

SCALES = (0.05, 0.25, 1.0)


def measure(scale):
    start = time.perf_counter()
    corpus = build_corpus(scale=scale, seed=7)
    corpus_time = time.perf_counter() - start

    start = time.perf_counter()
    engine = SearchEngine(corpus)
    index_time = time.perf_counter() - start

    model = build_centrifuge_model()
    start = time.perf_counter()
    association = engine.associate(model)
    associate_time = time.perf_counter() - start
    return len(corpus), corpus_time, index_time, associate_time, association.total


def test_search_scaling(benchmark, bench_scale, record_result):
    rows = []
    for scale in SCALES:
        if scale > bench_scale:
            continue
        records, corpus_time, index_time, associate_time, total = measure(scale)
        rows.append(
            (scale, records, f"{corpus_time:.2f}", f"{index_time:.2f}",
             f"{associate_time:.2f}", total)
        )

    # The benchmarked quantity is the re-association step at the largest scale
    # measured -- the inner loop of the interactive dashboard.
    largest = min(SCALES[-1], bench_scale)
    corpus = build_corpus(scale=largest, seed=7)
    engine = SearchEngine(corpus)
    model = build_centrifuge_model()
    benchmark(lambda: engine.associate(model))

    table = render_table(
        ("Scale", "Corpus records", "Build [s]", "Index [s]", "Associate [s]", "Associated records"),
        rows,
    )
    record_result("search_scaling", table)

    # Association stays interactive (well under a minute) even at full scale,
    # and re-association is much cheaper than rebuilding the corpus + index.
    for _, _, corpus_time, index_time, associate_time, _ in [
        (None, r[1], float(r[2]), float(r[3]), float(r[4]), r[5]) for r in rows
    ]:
        assert associate_time < 60.0
    largest_row = rows[-1]
    assert float(largest_row[4]) < float(largest_row[2]) + float(largest_row[3])

"""Scaling of corpus construction, indexing, association, and the caches.

Supports the paper's tool-engineering argument (Section 2): for the what-if
loop to be interactive, re-running the association after a model change must
be fast even against a full-size vulnerability corpus.  The benchmark
measures corpus build, engine construction (indexing), cold association,
warm (cache-served) association, and index snapshot save/load at increasing
corpus scales -- and asserts the cache contract: a warm ``associate()`` call
must be at least 3x faster than a cold one while returning identical results.
"""

from __future__ import annotations

import gc
import time

from repro.analysis.report import render_table
from repro.casestudies.centrifuge import build_centrifuge_model
from repro.corpus.synthesis import build_corpus
from repro.search.engine import SearchEngine

SCALES = (0.05, 0.25, 1.0)


def measure(scale, tmp_dir):
    # Earlier benchmarks leave millions of live objects in session fixtures;
    # collector sweeps triggered by allocation-heavy phases would otherwise
    # dominate these single-sample timings.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        return _measure(scale, tmp_dir)
    finally:
        if gc_was_enabled:
            gc.enable()


def _measure(scale, tmp_dir):
    start = time.perf_counter()
    corpus = build_corpus(scale=scale, seed=7)
    corpus_time = time.perf_counter() - start

    # Best-of-2 for the two quantities the snapshot assertion compares, so a
    # single scheduler hiccup cannot flip the verdict.
    start = time.perf_counter()
    engine = SearchEngine(corpus)
    index_time = time.perf_counter() - start
    start = time.perf_counter()
    SearchEngine(corpus)
    index_time = min(index_time, time.perf_counter() - start)

    model = build_centrifuge_model()
    start = time.perf_counter()
    association = engine.associate(model)
    cold_time = time.perf_counter() - start

    start = time.perf_counter()
    warm_association = engine.associate(model)
    warm_time = time.perf_counter() - start
    assert warm_association.total == association.total

    snapshot_path = tmp_dir / f"index-{scale}.json"
    start = time.perf_counter()
    engine.save_index_snapshot(snapshot_path)
    save_time = time.perf_counter() - start
    load_time = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        SearchEngine.from_index_snapshot(corpus, snapshot_path)
        load_time = min(load_time, time.perf_counter() - start)

    return {
        "records": len(corpus),
        "corpus_time": corpus_time,
        "index_time": index_time,
        "cold_time": cold_time,
        "warm_time": warm_time,
        "save_time": save_time,
        "load_time": load_time,
        "total": association.total,
    }


def test_search_scaling(benchmark, bench_scale, record_result, tmp_path):
    rows = []
    measured = []
    # Measure every configured scale up to the benchmark scale; a smoke run
    # with CPSEC_BENCH_SCALE below the smallest configured scale still
    # measures once, at the smoke scale itself.
    scales = [scale for scale in SCALES if scale <= bench_scale] or [bench_scale]
    for scale in scales:
        result = measure(scale, tmp_path)
        measured.append((scale, result))
        rows.append(
            (
                scale,
                result["records"],
                f"{result['corpus_time']:.2f}",
                f"{result['index_time']:.2f}",
                f"{result['cold_time']:.3f}",
                f"{result['warm_time']:.4f}",
                f"{result['load_time']:.2f}",
                result["total"],
            )
        )

    # The benchmarked quantity is the warm re-association step at the largest
    # scale measured -- the inner loop of the interactive dashboard.
    largest = min(SCALES[-1], bench_scale)
    corpus = build_corpus(scale=largest, seed=7)
    engine = SearchEngine(corpus)
    model = build_centrifuge_model()
    benchmark(lambda: engine.associate(model))

    table = render_table(
        ("Scale", "Corpus records", "Build [s]", "Index [s]", "Cold assoc [s]",
         "Warm assoc [s]", "Snapshot load [s]", "Associated records"),
        rows,
    )
    record_result(
        "search_scaling",
        table,
        data={
            "measurements": [
                {
                    "scale": scale,
                    "record_counts": {
                        "corpus": result["records"],
                        "associated": result["total"],
                    },
                    "timings": {
                        key: result[key]
                        for key in ("corpus_time", "index_time", "cold_time",
                                    "warm_time", "save_time", "load_time")
                    },
                }
                for scale, result in measured
            ],
        },
    )

    for _, result in measured:
        # Association stays interactive (well under a minute) even at full
        # scale.
        assert result["cold_time"] < 60.0
        # The cache contract at every scale: warm calls are at least 3x
        # faster than cold ones (in practice they are orders of magnitude
        # faster; 3x is the acceptance floor).
        assert result["warm_time"] * 3 <= result["cold_time"]
    _, largest_result = measured[-1]
    # Re-association is much cheaper than rebuilding the corpus + index, and
    # loading an index snapshot beats rebuilding the index from text.
    assert largest_result["cold_time"] < (
        largest_result["corpus_time"] + largest_result["index_time"]
    )
    assert largest_result["load_time"] < largest_result["index_time"]

"""Sharded-index scoring and incremental workspace ingest (PR 5 tentpole).

Two claims are measured and enforced here, both at paper scale:

* **Pruned scoring is free-or-better.**  The sharded engine skips whole
  shards whose vocabulary cannot intersect the query (pruning counters prove
  it) while returning bit-identical associations; its cold associate must
  not be slower than the monolithic engine beyond measurement noise.

* **Ingest is incremental.**  Appending a small delta (~5% of the corpus)
  with ``Workspace.extend`` -- load, tokenize only the delta, append one
  frame -- must be at least 5x faster than the rebuild it replaces
  (synthesize + build + save), with the extended artifact scoring exactly
  like a from-scratch engine over the merged corpus.
"""

from __future__ import annotations

import gc
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
from helpers_equivalence import association_signature  # noqa: E402

from repro.analysis.report import render_table  # noqa: E402
from repro.casestudies.centrifuge import build_centrifuge_model  # noqa: E402
from repro.corpus.synthesis import (  # noqa: E402
    build_corpus,
    build_extension_corpus,
)
from repro.search.engine import SearchEngine  # noqa: E402
from repro.workspace import Workspace  # noqa: E402


def _best_of(measure, rounds: int = 3):
    """Best wall-clock of N rounds (1-CPU CI hosts are noisy)."""
    results = [measure() for _ in range(rounds)]
    return min(results, key=lambda pair: pair[0])


def test_sharded_scoring_and_incremental_ingest(
    benchmark, bench_scale, corpus, record_result, tmp_path
):
    model = build_centrifuge_model()

    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        # -- index build: sharded vs monolithic -------------------------------
        def build_engine(sharded):
            start = time.perf_counter()
            engine = SearchEngine(corpus, sharded=sharded)
            return time.perf_counter() - start, engine

        build_sharded_time, sharded_engine = _best_of(lambda: build_engine(True))
        build_mono_time, mono_engine = _best_of(lambda: build_engine(False))

        # -- cold associate: pruned vs dense, interleaved ----------------------
        def cold(engine):
            engine.clear_caches()
            start = time.perf_counter()
            association = engine.associate(model)
            return time.perf_counter() - start, association

        sharded_times, mono_times = [], []
        for _ in range(5):
            elapsed, sharded_association = cold(sharded_engine)
            sharded_times.append(elapsed)
            elapsed, mono_association = cold(mono_engine)
            mono_times.append(elapsed)
        cold_sharded_time = min(sharded_times)
        cold_mono_time = min(mono_times)
    finally:
        if gc_was_enabled:
            gc.enable()

    reference = association_signature(mono_association)
    assert association_signature(sharded_association) == reference
    pruning = sharded_engine.cache_info()
    assert pruning["candidates_pruned"] > 0
    assert pruning["shards_skipped"] > 0

    # -- ingest: extend vs rebuild ---------------------------------------------
    artifact = tmp_path / "repro.cpsecws"
    Workspace.build(scale=bench_scale, seed=7).save(artifact)
    base_bytes = artifact.stat().st_size
    delta_count = max(10, int(len(corpus) * 0.05))
    delta = list(
        build_extension_corpus(count=delta_count, seed=42).all_records()
    )

    def rebuild():
        """What ingest used to cost: synthesize + build + save everything."""
        target = tmp_path / "rebuild.cpsecws"
        start = time.perf_counter()
        workspace = Workspace.build(scale=bench_scale, seed=7)
        workspace.corpus.add_all(delta)
        # The freshly built engine predates the delta; bundle a new one.
        rebuilt = Workspace.from_engine(SearchEngine(workspace.corpus))
        rebuilt.save(target)
        return time.perf_counter() - start, target

    def extend():
        """The incremental path: load, extend, append one frame."""
        target = tmp_path / "extend.cpsecws"
        target.write_bytes(artifact.read_bytes())
        start = time.perf_counter()
        workspace = Workspace.load(target)
        workspace.extend(delta, path=target)
        return time.perf_counter() - start, target

    rebuild_time, rebuilt_path = _best_of(rebuild, rounds=2)
    extend_time, extended_path = _best_of(extend, rounds=2)
    extend_speedup = rebuild_time / extend_time
    appended_bytes = extended_path.stat().st_size - base_bytes
    rewrite_bytes = rebuilt_path.stat().st_size

    # Exactness: the extended artifact and the full rebuild agree bit for bit.
    extended_engine = Workspace.load(extended_path).engine()
    rebuilt_engine = Workspace.load(rebuilt_path).engine()
    extended_reference = association_signature(rebuilt_engine.associate(model))
    assert (
        association_signature(extended_engine.associate(model))
        == extended_reference
    )

    # The benchmarked quantity: one incremental ingest round.
    benchmark.pedantic(lambda: extend()[0], rounds=2, iterations=1)

    rows = [
        ("index build", f"{build_mono_time:.3f}", f"{build_sharded_time:.3f}"),
        ("cold associate", f"{cold_mono_time:.4f}", f"{cold_sharded_time:.4f}"),
    ]
    lines = [
        f"corpus scale: {bench_scale} ({len(corpus)} records)",
        f"pruning: {pruning['candidates_pruned']} candidates pruned across "
        f"{pruning['shards_skipped']} skipped shards (bit-identical)",
        f"ingest delta: {len(delta)} records (~5% of corpus)",
        f"extend {extend_time:.3f}s vs rebuild {rebuild_time:.3f}s "
        f"-> {extend_speedup:.1f}x (floor: 5x)",
        f"bytes: appended {appended_bytes} vs rewritten {rewrite_bytes}",
        "",
        render_table(("Path", "Monolithic [s]", "Sharded [s]"), rows),
    ]
    record_result(
        "sharding_ingest",
        "\n".join(lines),
        data={
            "record_counts": {
                "corpus": len(corpus),
                "delta": len(delta),
                "associated": mono_association.total,
            },
            "timings": {
                "index_build_sharded": build_sharded_time,
                "index_build_monolithic": build_mono_time,
                "cold_associate_sharded": cold_sharded_time,
                "cold_associate_monolithic": cold_mono_time,
                "extend_time": extend_time,
                "rebuild_time": rebuild_time,
            },
            "pruning": {
                "candidates_pruned": pruning["candidates_pruned"],
                "shards_skipped": pruning["shards_skipped"],
            },
            "bytes": {
                "base_artifact": base_bytes,
                "appended": appended_bytes,
                "rewritten": rewrite_bytes,
            },
            "extend_speedup": extend_speedup,
            "sharded_bit_identical": True,
        },
    )

    # Acceptance floors, enforced at paper scale (smoke-scale CI runs record
    # the numbers but skip the wall-clock ratios -- at millisecond scale one
    # noisy-neighbor stall flips any verdict).
    if bench_scale >= 1.0:
        assert extend_speedup >= 5.0
        # Pruned scoring must not regress the cold path beyond noise.
        assert cold_sharded_time <= cold_mono_time * 1.25
        # The append is a small fraction of what a rewrite moves.
        assert appended_bytes < rewrite_bytes / 5

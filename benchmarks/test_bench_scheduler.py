"""Interactive latency under a concurrent batch sweep: FIFO vs fair-share.

The scheduler's acceptance bar: with two workers grinding through a batch
sweep, an analyst's interactive request must not sit behind the whole
backlog.  The same workload runs twice -- once under ``policy="fifo"``
(the pre-scheduler behavior: strict submission order) and once under
``policy="fair"`` (priority classes + weighted fair queueing) -- and the
interactive wait percentiles are compared.  Fair-share must cut the
interactive p95 wait by **at least 5x**.

Waits are the manager's own ``wait_s`` accounting (submit -> dispatch on the
monotonic clock), so the measurement is exactly what ``/healthz`` reports.
"""

import statistics

from repro.jobs import JobManager
from repro.service import AnalysisService, TopologyRequest

#: Batch sweep size: enough backlog that FIFO makes interactive work wait
#: through several full batch-job durations on two workers.
BATCH_JOBS = 16

#: Interactive probes submitted while the sweep is queued.
INTERACTIVE_JOBS = 8

WORKERS = 2


def _percentile(samples, q):
    ordered = sorted(samples)
    index = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[index]


def _run_policy(policy: str, bench_scale: float) -> dict:
    # A cache-free service so every batch job performs real association work
    # (a cached response would finish in microseconds and measure nothing).
    service = AnalysisService(max_response_cache_entries=0)
    # Warm the engine outside the measured window: the one-time corpus build
    # would otherwise be charged to whichever batch job ran first.
    service.topology(TopologyRequest())
    manager = JobManager(service, workers=WORKERS, policy=policy, max_queued=64)
    try:
        batch = [
            manager.submit(
                "associate", {"scale": bench_scale}, priority="batch"
            )
            for _ in range(BATCH_JOBS)
        ]
        interactive = [
            manager.submit("topology", {}, priority="interactive")
            for _ in range(INTERACTIVE_JOBS)
        ]
        for job in batch + interactive:
            manager.wait(job.job_id, timeout=600.0)
            assert job.state == "succeeded", (policy, job.operation, job.error)
        waits = [job.wait_s for job in interactive]
        batch_runtimes = [
            job.finished_at - job.started_at for job in batch
        ]
        stats = manager.stats()
    finally:
        manager.close(timeout=60.0)
    return {
        "interactive_wait_p50_s": _percentile(waits, 0.50),
        "interactive_wait_p95_s": _percentile(waits, 0.95),
        "batch_job_median_s": statistics.median(batch_runtimes),
        "healthz_wait": stats["wait_s"]["interactive"],
    }


def test_bench_scheduler_fairness(bench_scale, record_result):
    fifo = _run_policy("fifo", bench_scale)
    fair = _run_policy("fair", bench_scale)

    speedup_p95 = (
        fifo["interactive_wait_p95_s"] / fair["interactive_wait_p95_s"]
        if fair["interactive_wait_p95_s"] > 0
        else float("inf")
    )
    speedup_p50 = (
        fifo["interactive_wait_p50_s"] / fair["interactive_wait_p50_s"]
        if fair["interactive_wait_p50_s"] > 0
        else float("inf")
    )

    content = "\n".join(
        [
            f"corpus scale:                   {bench_scale}",
            f"workload:                       {BATCH_JOBS} batch associate jobs"
            f" + {INTERACTIVE_JOBS} interactive probes, {WORKERS} workers",
            f"batch job runtime (median):     {fifo['batch_job_median_s'] * 1000:.1f} ms",
            f"interactive wait p50, fifo:     {fifo['interactive_wait_p50_s'] * 1000:.1f} ms",
            f"interactive wait p95, fifo:     {fifo['interactive_wait_p95_s'] * 1000:.1f} ms",
            f"interactive wait p50, fair:     {fair['interactive_wait_p50_s'] * 1000:.1f} ms",
            f"interactive wait p95, fair:     {fair['interactive_wait_p95_s'] * 1000:.1f} ms",
            f"fair-share p95 speedup:         {speedup_p95:.1f}x (bar: >= 5x)",
            f"fair-share p50 speedup:         {speedup_p50:.1f}x",
        ]
    )
    record_result(
        "scheduler_fairness",
        content,
        data={
            "batch_jobs": BATCH_JOBS,
            "interactive_jobs": INTERACTIVE_JOBS,
            "workers": WORKERS,
            "p95_speedup": speedup_p95,
            "p50_speedup": speedup_p50,
            "timings": {
                "batch_job_median_s": fifo["batch_job_median_s"],
                "fifo_interactive_p50_s": fifo["interactive_wait_p50_s"],
                "fifo_interactive_p95_s": fifo["interactive_wait_p95_s"],
                "fair_interactive_p50_s": fair["interactive_wait_p50_s"],
                "fair_interactive_p95_s": fair["interactive_wait_p95_s"],
            },
        },
    )

    # Acceptance bar: fair-share cuts interactive p95 wait by >= 5x.
    assert speedup_p95 >= 5.0, (fifo, fair)
    # Sanity: under FIFO the probes really did queue behind the sweep.
    assert (
        fifo["interactive_wait_p95_s"]
        > fifo["batch_job_median_s"] * (BATCH_JOBS / WORKERS) * 0.5
    )

"""E4 -- what-if architectural comparison.

Section 3: "The dashboard acts as a what-if analysis, where different
architectures are evaluated by experts iteratively ... The assertion here is
that a component or subsystem that relates with less attack vectors than a
functionally equivalent system has a better security posture."

The benchmark evaluates two variants of the demonstration architecture
against the baseline: replacing the Windows 7 engineering workstation with a
hardened thin client (expected to improve the posture) and adding an
internet-exposed web server to the temperature transmitter (expected to
worsen it).  The dashboard's verdict must match in both directions.
"""

from __future__ import annotations

from repro.analysis.report import render_whatif
from repro.analysis.whatif import WhatIfStudy
from repro.casestudies.centrifuge import build_centrifuge_model, hardened_workstation_variant
from repro.graph.attributes import Attribute, AttributeKind, Fidelity
from repro.graph.refinement import swap_attribute


def worsened_sensor_variant(baseline):
    variant = swap_attribute(
        baseline, "Temperature Sensor", "temperature measurement",
        Attribute(
            "Apache HTTP Server",
            kind=AttributeKind.SOFTWARE,
            fidelity=Fidelity.IMPLEMENTATION,
            description="Apache HTTP Server embedded web configuration interface",
        ),
    )
    variant.name = "smart-transmitter-variant"
    return variant


def test_whatif_comparison(benchmark, engine, bench_scale, record_result):
    baseline = build_centrifuge_model()
    improved = hardened_workstation_variant(baseline)
    worsened = worsened_sensor_variant(baseline)
    study = WhatIfStudy(engine)

    stats_before = engine.stats.snapshot()
    comparisons = benchmark.pedantic(
        lambda: study.sweep(baseline, {"hardened-ws": improved, "smart-transmitter": worsened}),
        rounds=1,
        iterations=1,
    )
    stats_after = engine.stats.snapshot()

    improved_cmp = comparisons["hardened-ws"]
    worsened_cmp = comparisons["smart-transmitter"]
    scored = stats_after["components_scored"] - stats_before["components_scored"]
    reused = stats_after["components_reused"] - stats_before["components_reused"]
    lines = [
        f"corpus scale: {bench_scale}",
        f"components scored: {scored} (baseline {len(baseline)} + 1 per variant)",
        f"components reused incrementally: {reused}",
        "",
        render_whatif(improved_cmp),
        "",
        render_whatif(worsened_cmp),
    ]
    record_result(
        "whatif",
        "\n".join(lines),
        data={
            "record_counts": {
                "baseline_total": improved_cmp.baseline_total,
                "hardened_ws_total": improved_cmp.variant_total,
                "smart_transmitter_total": worsened_cmp.variant_total,
            },
            "incremental": {
                "components_scored": scored,
                "components_reused": reused,
            },
        },
    )

    # The sweep is incremental: the baseline is scored in full, then each of
    # the two variants re-scores only its single changed component.
    assert scored == len(baseline) + 2
    assert reused == 2 * (len(baseline) - 1)

    # The paper's comparison rule resolves both directions correctly.
    assert improved_cmp.variant_is_better
    assert not worsened_cmp.variant_is_better
    assert worsened_cmp.variant_total > worsened_cmp.baseline_total

    # The improvement is localized to the swapped component.
    assert [d.name for d in improved_cmp.changed_components()] == ["Programming WS"]
    workstation_delta = improved_cmp.changed_components()[0]
    assert workstation_delta.variant_total < 0.2 * workstation_delta.baseline_total

"""E6 -- mapping attack vectors to physical consequences (the CWE-78 scenario).

Section 3: CWE-78 OS command injection on the BPCS/SIS platforms "may result
in compromised control of the centrifuge, manifesting in destruction of the
manufactured product or damage to the centrifuge itself, which could cause
accidents.  This is not an unreasonable scenario as is illustrated by Triton".

The benchmark runs the closed-loop SCADA simulation for the nominal batch and
for each executable attack scenario, and reports peak process values, SIS
behaviour, and the hazards reached.  The decisive shape: command injection
alone is contained by the SIS (batch lost, no safety hazard), while the
Triton-like composite (SIS disabled first) crosses the thermal-instability
limit.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.attacks.scenarios import SCENARIO_LIBRARY
from repro.cps.hazards import HazardKind
from repro.cps.scada import ScadaSimulation

DURATION_S = 420.0
DT = 0.5


def run_all_scenarios():
    rows = {}
    nominal = ScadaSimulation()
    trace = nominal.run(DURATION_S, DT)
    rows["nominal"] = (trace, trace.hazards(), nominal.sis)
    for name, scenario in SCENARIO_LIBRARY.items():
        simulation = ScadaSimulation(interventions=scenario.interventions())
        trace = simulation.run(DURATION_S, DT)
        rows[name] = (trace, trace.hazards(), simulation.sis)
    return rows


def test_consequence_scenarios(benchmark, bench_scale, record_result):
    rows = benchmark.pedantic(run_all_scenarios, rounds=1, iterations=1)

    table_rows = []
    for name, (trace, report, sis) in rows.items():
        hazards = ", ".join(sorted({event.kind.value for event in report.events})) or "none"
        table_rows.append(
            (name, f"{trace.max_temperature():.1f}", f"{trace.max_speed():.0f}",
             "yes" if sis.tripped else "no",
             "no" if sis.enabled else "DISABLED", hazards)
        )
    text = render_table(
        ("Scenario", "Peak T [C]", "Peak rpm", "SIS trip", "SIS disabled", "Hazards"),
        table_rows,
    )
    record_result("consequences", f"simulation horizon: {DURATION_S}s\n\n{text}")

    nominal_trace, nominal_report, nominal_sis = rows["nominal"]
    injection_trace, injection_report, injection_sis = rows["bpcs-command-injection"]
    triton_trace, triton_report, triton_sis = rows["triton-like-sis-bypass"]

    # Nominal batch: regulation within the paper's +/- 1 rpm, no hazards.
    assert nominal_trace.speed_tracking_error(after_s=150.0) < 1.0
    assert not nominal_report.events
    assert not nominal_sis.tripped

    # CWE-78 alone: the SIS catches it; the batch is lost but the plant is safe.
    assert injection_sis.tripped
    assert injection_report.product_lost
    assert not injection_report.any_safety_hazard

    # Triton-like composite: safety layer bypassed, thermal runaway reached.
    assert not triton_sis.enabled
    assert not triton_sis.tripped
    assert triton_report.occurred(HazardKind.THERMAL_RUNAWAY)
    assert triton_trace.max_temperature() > 30.0

    # The scenarios that manipulate control or blind a protection layer all
    # lead to at least product loss.  (Pure availability attacks -- the DoS
    # and flood scenarios -- degrade regulation but a well-tuned loop may ride
    # through them, which is itself a finding worth reporting.)
    expected_loss = (
        "triton-like-sis-bypass",
        "bpcs-command-injection",
        "unauthenticated-setpoint-write",
        "controller-blinding-mitm",
        "sis-replay-blinding",
        "physical-sensor-tamper",
    )
    for name in expected_loss:
        _, report, _ = rows[name]
        assert report.product_lost, f"scenario {name} produced no physical consequence"

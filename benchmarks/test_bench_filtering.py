"""E5 -- filtering the large result space.

Section 3: "the total number of attack vectors returned by the search process
is large (Table 1).  Filtering functionality is implemented to manage these
attack vectors."  The benchmark measures how each filter stage of the
analyst's pipeline shrinks the merged artifact, and how long the filter pass
takes relative to the association itself.
"""

from __future__ import annotations

from repro.corpus.schema import RecordKind
from repro.search.filters import (
    FilterPipeline,
    by_exploitability,
    by_min_score,
    by_network_exposure,
    by_severity,
    top_k,
)


def staged_reduction(association):
    stages = [
        ("associated (unfiltered)", FilterPipeline()),
        ("+ min score 0.5", FilterPipeline([by_min_score(0.5)])),
        ("+ network exploitable", FilterPipeline([by_min_score(0.5), by_exploitability()])),
        ("+ severity >= High", FilterPipeline([by_min_score(0.5), by_exploitability(),
                                               by_severity("High")])),
        ("+ exposure <= 3 hops", FilterPipeline([by_min_score(0.5), by_exploitability(),
                                                 by_severity("High"), by_network_exposure(3)])),
        ("+ top 25 per component", FilterPipeline([by_min_score(0.5), by_exploitability(),
                                                   by_severity("High"), by_network_exposure(3),
                                                   top_k(25)])),
    ]
    results = []
    for label, pipeline in stages:
        filtered = pipeline.apply(association)
        results.append((label, filtered.total, filtered.total_counts()))
    return results


def test_filtering_pipeline(benchmark, centrifuge_association, bench_scale, record_result):
    results = benchmark.pedantic(
        lambda: staged_reduction(centrifuge_association), rounds=1, iterations=1
    )

    lines = [f"corpus scale: {bench_scale}", "",
             f"{'stage':<28} {'total':>8} {'patterns':>9} {'weaknesses':>11} {'vulns':>8}"]
    for label, total, counts in results:
        lines.append(
            f"{label:<28} {total:>8} {counts[RecordKind.ATTACK_PATTERN]:>9} "
            f"{counts[RecordKind.WEAKNESS]:>11} {counts[RecordKind.VULNERABILITY]:>8}"
        )
    record_result("filtering", "\n".join(lines))

    totals = [total for _, total, _ in results]
    # Each stage removes results (monotone non-increasing), and the full
    # pipeline reduces the unfiltered space by at least an order of magnitude.
    assert all(earlier >= later for earlier, later in zip(totals, totals[1:]))
    assert totals[-1] <= totals[0] / 10
    assert totals[-1] > 0
    # The final working set is small enough for expert review (the point of
    # the filtering capability).
    assert totals[-1] <= 25 * len(centrifuge_association.components)

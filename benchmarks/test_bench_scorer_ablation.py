"""Ablation -- matching strategy for attribute -> attack-vector association.

DESIGN.md calls out the scorer as a design choice worth ablating: the
coverage scorer (default) against plain TF-IDF cosine and Jaccard overlap.
The paper notes the prototype's NLP grounding makes results "very sensitive
... depending on minor changes in attribute descriptions"; this benchmark
quantifies how the choice of scorer changes the Table 1 row for each
attribute and how much each scorer costs.
"""

from __future__ import annotations

import time

from repro.analysis.report import render_table
from repro.casestudies.centrifuge import build_centrifuge_model
from repro.search.engine import SearchEngine

ATTRIBUTES = ("Cisco ASA", "NI RT Linux OS", "Windows 7", "Labview")


def run_scorer(corpus, scorer, thresholds):
    engine = SearchEngine(corpus, scorer=scorer, **thresholds)
    model = build_centrifuge_model()
    start = time.perf_counter()
    association = engine.associate(model)
    elapsed = time.perf_counter() - start
    rows = {row["attribute"]: row for row in association.attribute_table()}
    return rows, elapsed


def test_scorer_ablation(benchmark, corpus, bench_scale, record_result):
    configs = {
        "coverage": {},
        "cosine": {"pattern_threshold": 0.05, "weakness_threshold": 0.05,
                   "vulnerability_text_threshold": 0.08},
        "jaccard": {"pattern_threshold": 0.03, "weakness_threshold": 0.03,
                    "vulnerability_text_threshold": 0.03},
    }

    results = {}
    for scorer, thresholds in configs.items():
        if scorer == "coverage":
            rows, elapsed = benchmark.pedantic(
                lambda: run_scorer(corpus, "coverage", {}), rounds=1, iterations=1
            )
        else:
            rows, elapsed = run_scorer(corpus, scorer, thresholds)
        results[scorer] = (rows, elapsed)

    table_rows = []
    for scorer, (rows, elapsed) in results.items():
        for attribute in ATTRIBUTES:
            row = rows[attribute]
            table_rows.append(
                (scorer, attribute, row["attack_patterns"], row["weaknesses"],
                 row["vulnerabilities"], f"{elapsed:.2f}")
            )
    table = render_table(
        ("Scorer", "Attribute", "Patterns", "Weaknesses", "Vulns", "Assoc time [s]"),
        table_rows,
    )
    record_result("scorer_ablation", f"corpus scale: {bench_scale}\n\n{table}")

    coverage_rows, coverage_time = results["coverage"]
    jaccard_rows, jaccard_time = results["jaccard"]
    cosine_rows, _ = results["cosine"]

    # The coverage scorer preserves the Table 1 ordering.
    assert (
        coverage_rows["NI RT Linux OS"]["vulnerabilities"]
        > coverage_rows["Windows 7"]["vulnerabilities"]
        > coverage_rows["Cisco ASA"]["vulnerabilities"]
        > coverage_rows["Labview"]["vulnerabilities"]
    )
    # Cosine keeps the platform CVEs reachable as well (platform tags dominate).
    assert cosine_rows["Cisco ASA"]["vulnerabilities"] > 0
    # Jaccard (no index) is far slower than the indexed scorers -- the reason
    # the engine builds inverted indexes at all.
    assert jaccard_time > 3 * coverage_time

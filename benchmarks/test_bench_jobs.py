"""Job-engine overhead and streaming throughput.

The acceptance bars for the async job engine:

* running an operation as a job costs **< 5 ms** over calling the service
  synchronously (same warm service, same response),
* submit -> first observable event stays in single-digit milliseconds,
* a paper-scale association job emits >= 5 monotonic progress events, and a
  long simulation streams progress at a rate a dashboard can animate.

Everything is measured in-process: the HTTP/SSE transport costs are the
service benchmark's territory; this one isolates what the *job machinery*
(queueing, worker handoff, event bookkeeping, journal) adds.
"""

import statistics
import time

import pytest

from repro.corpus.synthesis import build_params
from repro.jobs import JobManager
from repro.service import AnalysisService, AssociateRequest, canonical_json
from repro.workspace import Workspace

#: Warm job/sync pairs measured for the overhead numbers.
SAMPLES = 20


@pytest.fixture(scope="module")
def warm_workspace(engine, bench_scale):
    workspace = Workspace.from_engine(engine)
    workspace.params = build_params(scale=bench_scale, seed=7, include_background=True)
    return workspace


def test_bench_job_engine(warm_workspace, bench_scale, record_result, tmp_path_factory):
    journal = tmp_path_factory.mktemp("jobs_bench") / "jobs.jsonl"
    service = AnalysisService(workspaces={"bench": warm_workspace},
                              default_workspace="bench")
    manager = JobManager(service, workers=2, journal_path=journal)
    request = AssociateRequest(scale=bench_scale)

    # First request pays the cold association once; the job path must then
    # emit one progress event per component even though the engine is warm.
    first_job = manager.submit("associate", request.to_dict())
    start = time.perf_counter()
    manager.wait(first_job.job_id, timeout=600.0)
    first_job_s = time.perf_counter() - start
    assert first_job.state == "succeeded"
    progress_events = [
        event for event in first_job.events if event.kind == "progress"
    ]
    assert len(progress_events) >= 5  # acceptance floor
    dones = [event.done for event in progress_events if event.phase == "associate"]
    assert dones == sorted(dones)

    # The job's payload is the synchronous response, byte for byte.
    sync_response = service.associate(request)
    assert canonical_json(first_job.result) == canonical_json(sync_response.to_dict())

    # Warm overhead: job round-trip minus synchronous call, medians of N.
    sync_times = []
    for _ in range(SAMPLES):
        start = time.perf_counter()
        service.associate(request)
        sync_times.append(time.perf_counter() - start)
    job_times = []
    submit_to_running = []
    for _ in range(SAMPLES):
        start = time.perf_counter()
        job = manager.submit("associate", request.to_dict())
        events, _ = manager.events_since(job.job_id, after=0, timeout=30.0)
        submit_to_running.append(time.perf_counter() - start)
        manager.wait(job.job_id, timeout=30.0)
        job_times.append(time.perf_counter() - start)
        assert job.state == "succeeded"
    sync_s = statistics.median(sync_times)
    job_s = statistics.median(job_times)
    overhead_s = job_s - sync_s
    first_event_s = statistics.median(submit_to_running)

    # Streaming rate: one long simulation emits ~25 progress events over its
    # horizon; events/sec is what an SSE dashboard would see.
    stream_job = manager.submit(
        "simulate", {"scenario": "nominal", "duration_s": 21600.0, "dt": 0.5}
    )
    stream_start = time.perf_counter()
    streamed = 0
    cursor = -1
    while True:
        events, done = manager.events_since(stream_job.job_id, cursor, timeout=60.0)
        for event in events:
            cursor = event.seq
            if event.kind == "progress":
                streamed += 1
        if done:
            break
    stream_s = time.perf_counter() - stream_start
    events_per_s = streamed / stream_s if stream_s > 0 else float("inf")

    manager.close(timeout=30.0)

    content = "\n".join(
        [
            f"corpus scale:                  {bench_scale}",
            f"first associate job (cold):    {first_job_s * 1000:.1f} ms, "
            f"{len(progress_events)} progress events",
            f"warm associate, synchronous:   {sync_s * 1000:.3f} ms (median of {SAMPLES})",
            f"warm associate, as a job:      {job_s * 1000:.3f} ms (median of {SAMPLES})",
            f"job overhead vs synchronous:   {overhead_s * 1000:.3f} ms",
            f"submit -> first event:         {first_event_s * 1000:.3f} ms (median)",
            f"simulate stream:               {streamed} progress events in "
            f"{stream_s:.2f} s ({events_per_s:.1f} events/s)",
        ]
    )
    record_result(
        "jobs_engine",
        content,
        data={
            "samples": SAMPLES,
            "first_job_s": first_job_s,
            "first_job_progress_events": len(progress_events),
            "warm_sync_s": sync_s,
            "warm_job_s": job_s,
            "job_overhead_s": overhead_s,
            "submit_to_first_event_s": first_event_s,
            "stream_progress_events": streamed,
            "stream_duration_s": stream_s,
            "stream_events_per_s": events_per_s,
        },
    )

    # Acceptance floors: the job machinery adds < 5 ms over the synchronous
    # path, and the stream is lively enough to animate.
    assert overhead_s < 0.005
    assert first_event_s < 0.05
    assert streamed >= 5

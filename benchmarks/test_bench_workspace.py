"""Cold-start from the one-file workspace artifact, and parallel association.

The "analyst opens the tool" path: a cold run at corpus scale 1.0 used to pay
for synthetic corpus generation, tokenization of every record text, and the
TF-IDF fit before the first association could be answered.  The workspace
artifact persists all of those build products in one file; this benchmark
measures the end-to-end cold path both ways -- build-from-scratch versus
load-from-artifact -- and enforces the acceptance floor: the artifact path
must be at least 3x faster while returning bit-identical associations.

The same benchmark pins the parallel association contract at paper scale:
``associate(workers=N)`` must match the serial association bit for bit
(the deterministic merge), and ``associate_many`` must match per-system
``associate`` calls.
"""

from __future__ import annotations

import gc
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
from helpers_equivalence import association_signature  # noqa: E402

from repro.analysis.report import render_table  # noqa: E402
from repro.casestudies.centrifuge import build_centrifuge_model  # noqa: E402
from repro.corpus.synthesis import build_corpus  # noqa: E402
from repro.search.engine import SearchEngine  # noqa: E402
from repro.workspace import Workspace  # noqa: E402


def _measure_scratch(scale, model):
    """The current build-from-scratch cold path, end to end."""
    start = time.perf_counter()
    corpus = build_corpus(scale=scale, seed=7)
    corpus_time = time.perf_counter() - start
    start = time.perf_counter()
    engine = SearchEngine(corpus)
    engine_time = time.perf_counter() - start
    start = time.perf_counter()
    association = engine.associate(model)
    associate_time = time.perf_counter() - start
    return {
        "corpus_time": corpus_time,
        "engine_time": engine_time,
        "associate_time": associate_time,
        "total_time": corpus_time + engine_time + associate_time,
    }, association


def _measure_workspace(path, model):
    """The artifact cold path: load, build engine, associate."""
    start = time.perf_counter()
    workspace = Workspace.load(path)
    load_time = time.perf_counter() - start
    start = time.perf_counter()
    engine = workspace.engine()
    engine_time = time.perf_counter() - start
    start = time.perf_counter()
    association = engine.associate(model)
    associate_time = time.perf_counter() - start
    return {
        "load_time": load_time,
        "engine_time": engine_time,
        "associate_time": associate_time,
        "total_time": load_time + engine_time + associate_time,
    }, association


def test_workspace_cold_start_and_parallel_determinism(
    benchmark, bench_scale, record_result, tmp_path
):
    model = build_centrifuge_model()
    artifact = tmp_path / "repro.cpsecws"

    start = time.perf_counter()
    workspace = Workspace.build(scale=bench_scale, seed=7)
    build_time = time.perf_counter() - start
    start = time.perf_counter()
    workspace.save(artifact)
    save_time = time.perf_counter() - start
    artifact_bytes = artifact.stat().st_size

    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        # Best-of-2 on both paths so one scheduler hiccup cannot flip the
        # speedup verdict; associations from every run are compared exactly.
        scratch, scratch_association = _measure_scratch(bench_scale, model)
        ws, ws_association = _measure_workspace(artifact, model)
        scratch_again, _ = _measure_scratch(bench_scale, model)
        ws_again, ws_association_again = _measure_workspace(artifact, model)
    finally:
        if gc_was_enabled:
            gc.enable()
    if scratch_again["total_time"] < scratch["total_time"]:
        scratch = scratch_again
    if ws_again["total_time"] < ws["total_time"]:
        ws = ws_again
    speedup = scratch["total_time"] / ws["total_time"]

    reference = association_signature(scratch_association)
    assert association_signature(ws_association) == reference
    assert association_signature(ws_association_again) == reference

    # Parallel association: serial vs workers=4 vs workers=8, plus the batch
    # API, all on a fresh engine so nothing is pre-cached.
    engine = Workspace.load(artifact).engine()
    start = time.perf_counter()
    serial = engine.associate(model, workers=1)
    serial_time = time.perf_counter() - start
    engine.clear_caches()
    start = time.perf_counter()
    parallel = engine.associate(model, workers=4)
    parallel_time = time.perf_counter() - start
    assert association_signature(serial) == reference
    assert association_signature(parallel) == reference
    eight = engine.associate(model, workers=8)
    assert association_signature(eight) == reference
    batch = engine.associate_many([model, model.copy("twin")], workers=4)
    assert association_signature(batch[0]) == reference
    assert association_signature(batch[1]) == reference

    # The benchmarked quantity: the artifact cold path.
    benchmark.pedantic(
        lambda: _measure_workspace(artifact, model), rounds=2, iterations=1
    )

    rows = [
        ("scratch: corpus + engine + associate",
         f"{scratch['corpus_time']:.3f} + {scratch['engine_time']:.3f} + "
         f"{scratch['associate_time']:.3f}",
         f"{scratch['total_time']:.3f}"),
        ("workspace: load + engine + associate",
         f"{ws['load_time']:.3f} + {ws['engine_time']:.3f} + "
         f"{ws['associate_time']:.3f}",
         f"{ws['total_time']:.3f}"),
    ]
    lines = [
        f"corpus scale: {bench_scale}",
        f"artifact size: {artifact_bytes / 1e6:.1f} MB "
        f"(build {build_time:.3f}s, save {save_time:.3f}s)",
        f"cold-start speedup from artifact: {speedup:.2f}x (floor: 3x)",
        f"serial cold associate: {serial_time:.3f}s; "
        f"workers=4 cold associate: {parallel_time:.3f}s "
        f"(host has {os.cpu_count()} CPU(s); the contract is bit-identity, "
        "wall-clock gains need real cores)",
        "parallel associate bit-identical to serial: yes (workers 1/4/8 + batch)",
        "",
        render_table(("Cold path", "Phases [s]", "Total [s]"), rows),
    ]
    record_result(
        "workspace_cold_start",
        "\n".join(lines),
        data={
            "record_counts": {
                "associated": scratch_association.total,
                "components": len(scratch_association.components),
            },
            "artifact": {
                "bytes": artifact_bytes,
                "build_time": build_time,
                "save_time": save_time,
            },
            "timings": {
                "scratch": scratch,
                "workspace": ws,
                "serial_associate": serial_time,
                "parallel_associate_workers4": parallel_time,
            },
            "speedup": speedup,
            "parallel_bit_identical": True,
            "host_cpus": os.cpu_count(),
        },
    )

    # Acceptance floor, enforced at paper scale: the artifact path is at
    # least 3x faster than the build-from-scratch path, bit-identical, and
    # sub-second.  Smoke-scale runs (CI shared runners) still record the
    # measurements but skip the hard wall-clock ratio -- at tens of
    # milliseconds per path one noisy-neighbor stall can flip the verdict.
    if bench_scale >= 1.0:
        assert speedup >= 3.0
        assert ws["total_time"] < 1.0

"""E3 -- model-fidelity sensitivity of the result space.

Section 3: "the general lessons stemming from the large result space is that
it is highly sensitive to the fidelity of the model.  If the model is closer
to implementation ... the result space will be more specific.  Another
possible solution is to abstract away vulnerabilities at the earlier stages
of the design lifecycle where the model is more abstract and therefore better
relates to attack patterns and weaknesses."

The benchmark sweeps the same architecture across the three fidelity levels
and reports the per-class result-space sizes, plus an ablation of
fidelity-aware matching (the engine option that implements the abstraction
recommendation).
"""

from __future__ import annotations

from repro.casestudies.centrifuge import build_centrifuge_model
from repro.corpus.schema import RecordKind
from repro.graph.attributes import Fidelity
from repro.search.engine import SearchEngine


def sweep(engine):
    results = {}
    for fidelity in Fidelity:
        model = build_centrifuge_model(fidelity)
        association = engine.associate(model)
        results[fidelity] = association.total_counts()
    return results


def test_fidelity_sweep(benchmark, corpus, engine, bench_scale, record_result):
    results = benchmark.pedantic(lambda: sweep(engine), rounds=1, iterations=1)

    lines = [f"corpus scale: {bench_scale}", "",
             f"{'fidelity':<16} {'attack patterns':>16} {'weaknesses':>12} {'vulnerabilities':>16}"]
    for fidelity, counts in results.items():
        lines.append(
            f"{fidelity.name:<16} {counts[RecordKind.ATTACK_PATTERN]:>16} "
            f"{counts[RecordKind.WEAKNESS]:>12} {counts[RecordKind.VULNERABILITY]:>16}"
        )

    # Ablation: flat matching (fidelity_aware off) lets abstract models match
    # vulnerabilities too, flooding the early-lifecycle result space.
    flat_engine = SearchEngine(corpus, fidelity_aware=False)
    flat = flat_engine.associate(build_centrifuge_model(Fidelity.LOGICAL)).total_counts()
    lines.append("")
    lines.append(
        "ablation (LOGICAL model, fidelity-aware off): "
        f"vulnerabilities={flat[RecordKind.VULNERABILITY]}"
    )
    record_result("fidelity_sweep", "\n".join(lines))

    conceptual = results[Fidelity.CONCEPTUAL]
    logical = results[Fidelity.LOGICAL]
    implementation = results[Fidelity.IMPLEMENTATION]

    # Abstract models relate to attack patterns and weaknesses only.
    assert conceptual[RecordKind.VULNERABILITY] == 0
    assert logical[RecordKind.VULNERABILITY] == 0
    assert conceptual[RecordKind.ATTACK_PATTERN] > 0
    assert conceptual[RecordKind.WEAKNESS] > 0

    # Implementation detail makes vulnerability matching possible and dominant.
    assert implementation[RecordKind.VULNERABILITY] > 1000 * bench_scale
    assert implementation[RecordKind.VULNERABILITY] > implementation[RecordKind.WEAKNESS]

    # The result space grows monotonically with fidelity.
    assert sum(conceptual.values()) <= sum(logical.values()) <= sum(implementation.values())

"""Exercise the async job surface of a running ``cpsec serve``.

The CI service-smoke job uses this as its scripted client for the job
engine: against a (multi-workspace) server it

1. hits ``GET /v1/ops`` and checks the expected workspace names are served,
2. submits a slow simulation job and streams its SSE events until at least
   two progress events arrived (then cancels it -- smoke runs stay quick),
3. submits a second slow job and cancels it, verifying the terminal state,
4. submits an association job and checks its final payload is byte-identical
   to the synchronous endpoint's response,
5. checks ``/healthz`` reports per-workspace stats and job counters.

Usage::

    PYTHONPATH=src python examples/jobs_demo.py \\
        --url http://127.0.0.1:8765 --scale 0.05 \\
        --workspace-name smoke2 --workspace-scale 0.03 \\
        --expect-workspaces default,smoke2
"""

from __future__ import annotations

import argparse
import sys

from repro.service import ServiceClient, ServiceError, canonical_json

SLOW_SIMULATE = {"scenario": "nominal", "duration_s": 86400.0, "dt": 0.5}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", required=True, help="base URL of the running service")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="corpus scale of the server's default workspace")
    parser.add_argument("--workspace-name", default=None,
                        help="a named workspace to route the association job to")
    parser.add_argument("--workspace-scale", type=float, default=None,
                        help="that workspace's corpus scale (defaults to --scale)")
    parser.add_argument("--expect-workspaces", default=None,
                        help="comma-separated workspace names /v1/ops must list")
    args = parser.parse_args(argv)

    client = ServiceClient(args.url)
    failures: list[str] = []

    # 1. discovery
    ops = client.ops()
    print(f"/v1/ops: {len(ops['operations'])} operations, "
          f"workspaces {ops['workspaces']}, jobs_enabled={ops['jobs_enabled']}")
    if len(ops["operations"]) != 10 or not ops["jobs_enabled"]:
        failures.append(f"/v1/ops unexpected payload: {ops}")
    if args.expect_workspaces:
        expected = sorted(name for name in args.expect_workspaces.split(",") if name)
        if sorted(ops["workspaces"]) != expected:
            failures.append(
                f"/v1/ops workspaces {ops['workspaces']} != expected {expected}"
            )

    # 2. slow job + SSE progress stream
    job = client.submit("simulate", SLOW_SIMULATE)
    print(f"submitted slow job {job['job_id']}")
    progress_seen = 0
    last_seq = -1
    for event in client.stream_events(job["job_id"]):
        last_seq_ok = event["seq"] > last_seq
        last_seq = event["seq"]
        if not last_seq_ok:
            failures.append(f"SSE seq not monotonic at {event}")
            break
        if event["kind"] == "progress":
            progress_seen += 1
            print(f"  progress {event['phase']} {event['done']}/{event['total']}")
            if progress_seen >= 2:
                break
    if progress_seen < 2:
        failures.append(f"streamed only {progress_seen} progress events")
    client.cancel(job["job_id"])
    finished = client.wait(job["job_id"], timeout=60.0)
    print(f"slow job ended as {finished['state']}")

    # 3. cancel a second job outright
    second = client.submit("simulate", SLOW_SIMULATE)
    client.cancel(second["job_id"])
    record = client.wait(second["job_id"], timeout=60.0)
    print(f"second job cancelled -> state {record['state']}")
    if record["state"] != "cancelled":
        failures.append(f"cancelled job ended as {record['state']}")

    # 4. association job == synchronous endpoint, byte for byte
    request: dict = {"scale": args.workspace_scale or args.scale}
    if args.workspace_name:
        request["workspace"] = args.workspace_name
    wire = client.call_raw("associate", request)
    assoc_job = client.submit("associate", request)
    assoc = client.wait(assoc_job["job_id"], timeout=300.0)
    if assoc["state"] != "succeeded":
        failures.append(f"association job ended as {assoc['state']}: {assoc.get('error')}")
    elif canonical_json(assoc["result"]) != wire.decode("utf-8"):
        failures.append("association job result diverges from synchronous response")
    else:
        print(f"association job result matches synchronous bytes "
              f"({len(wire)} bytes)")

    # 5. health: job counters and per-workspace stats
    health = client.health()
    jobs_stats = health.get("jobs") or {}
    workspaces = health.get("workspaces") or {}
    print(f"/healthz: jobs {jobs_stats.get('by_state')}, "
          f"workspaces {sorted(workspaces)}")
    if jobs_stats.get("by_state", {}).get("cancelled", 0) < 2:
        failures.append(f"health job counters look wrong: {jobs_stats}")
    for name, stats in workspaces.items():
        if stats["loaded"] and not stats.get("engine_pool"):
            failures.append(f"workspace {name} reports no engine pool stats")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print("job engine smoke: all checks passed")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ServiceError as error:
        print(f"FAIL service error: {error.code}: {error.message}", file=sys.stderr)
        sys.exit(1)

"""Reproduce the paper's Table 1 at full corpus scale.

Builds the synthetic MITRE-like corpus at paper scale (about 22k CVE-like
records, 770+ CWE-like records, 570+ CAPEC-like records), associates it with
the SCADA centrifuge model, and prints the measured table side by side with
the published values.

Run with::

    python examples/table1_reproduction.py [--scale 1.0]
"""

from __future__ import annotations

import argparse
import time

from repro import build_centrifuge_model, build_corpus, SearchEngine

PAPER_TABLE1 = {
    "Cisco ASA": (2, 1, 3776),
    "NI RT Linux OS": (54, 75, 9673),
    "Windows 7": (41, 73, 6627),
    "Labview": (0, 0, 6),
    "NI cRIO 9063": (0, 0, 7),
    "NI cRIO 9064": (0, 0, 7),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="synthetic corpus scale (1.0 = paper scale)")
    args = parser.parse_args()

    start = time.perf_counter()
    corpus = build_corpus(scale=args.scale)
    print(f"corpus built in {time.perf_counter() - start:.1f} s: {corpus!r}")

    start = time.perf_counter()
    engine = SearchEngine(corpus)
    print(f"indexes built in {time.perf_counter() - start:.1f} s")

    model = build_centrifuge_model()
    start = time.perf_counter()
    association = engine.associate(model)
    print(f"association computed in {time.perf_counter() - start:.1f} s\n")

    rows = {row["attribute"]: row for row in association.attribute_table()}
    header = (f"{'Attribute':<16} | {'paper AP':>8} {'paper CWE':>9} {'paper CVE':>9} | "
              f"{'repro AP':>8} {'repro CWE':>9} {'repro CVE':>9}")
    print(header)
    print("-" * len(header))
    for name, (ap, cwe, cve) in PAPER_TABLE1.items():
        row = rows[name]
        print(
            f"{name:<16} | {ap:>8} {cwe:>9} {cve:>9} | "
            f"{row['attack_patterns']:>8} {row['weaknesses']:>9} {row['vulnerabilities']:>9}"
        )

    print(
        "\nNote: the corpus is a synthetic, offline stand-in for the MITRE feeds "
        "(see DESIGN.md); the comparison is about the shape of the result space, "
        "not exact values."
    )


if __name__ == "__main__":
    main()

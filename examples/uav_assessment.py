"""Assessing a different cyber-physical system: a small UAV.

The pipeline is not specific to the centrifuge demonstration; this example
runs it over a quadcopter unmanned-aircraft system (the authors' other
recurring case study): association, posture metrics, exploit chains to the
flight controller, the STRIDE baseline for contrast, and an attack tree with
its minimal cut sets.

Run with::

    python examples/uav_assessment.py [--scale 0.1]
"""

from __future__ import annotations

import argparse

from repro import build_corpus, SearchEngine
from repro.analysis.metrics import compute_posture
from repro.analysis.report import render_posture_report, render_table
from repro.baselines.attack_trees import build_attack_tree
from repro.baselines.stride import StrideAnalyzer
from repro.casestudies.uav import build_uav_model
from repro.graph.graphml import write_graphml
from repro.search.chains import find_exploit_chains


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--graphml", default="", help="optional path to export the model")
    args = parser.parse_args()

    uav = build_uav_model()
    if args.graphml:
        write_graphml(uav, args.graphml)
        print(f"model exported to {args.graphml}")

    corpus = build_corpus(scale=args.scale)
    engine = SearchEngine(corpus)
    association = engine.associate(uav)
    metrics = compute_posture(association)

    print("=== UAV security posture ===")
    print(render_posture_report(association, metrics))

    print("\n=== Exploit chains to the flight controller ===")
    chains = find_exploit_chains(association, "Flight Controller")
    for chain in chains[:5]:
        print(" ", chain.describe())

    print("\n=== STRIDE baseline (for contrast) ===")
    analyzer = StrideAnalyzer()
    threats = analyzer.analyze(uav)
    summary = analyzer.summary(threats)
    print(render_table(("STRIDE category", "Threats"), sorted(summary.items())))
    uncovered = analyzer.uncovered_components(uav, threats)
    print(f"components invisible to STRIDE: {', '.join(uncovered) or 'none'}")

    print("\n=== Attack tree: compromise the flight controller ===")
    tree = build_attack_tree(association, "Flight Controller",
                             max_paths=8, max_vectors_per_component=3)
    print(f"goal: {tree.goal}")
    print(f"leaves: {tree.leaf_count()}, depth: {tree.depth()}")
    cut_sets = tree.cut_sets(limit=200)
    print(f"minimal cut sets (showing up to 5 of {len(cut_sets)}):")
    for cut_set in cut_sets[:5]:
        print("  {" + ", ".join(sorted(cut_set)) + "}")


if __name__ == "__main__":
    main()

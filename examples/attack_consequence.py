"""From an associated attack vector to a physical consequence.

Section 3 of the paper singles out CWE-78 (OS command injection) against the
BPCS and SIS platforms and points at the Triton incident to argue that attack
vectors in CPS can end in accidents.  This example walks that exact story on
the simulated plant:

1. associate attack vectors with the SCADA model and confirm CWE-78 lands on
   the control platforms,
2. run the closed-loop centrifuge simulation for the nominal batch,
3. run it again under CWE-78 command injection (the SIS contains it),
4. run the Triton-like composite (SIS disabled first) and show the thermal
   runaway hazard,
5. print the consequence table the dashboard would attach to the finding.

Run with::

    python examples/attack_consequence.py
"""

from __future__ import annotations

from repro import build_centrifuge_model, build_corpus, SearchEngine
from repro.analysis.report import render_consequences, render_table
from repro.attacks.consequence import ConsequenceMapper
from repro.attacks.injection import CommandInjectionAttack
from repro.attacks.scenarios import TritonLikeScenario
from repro.corpus.seed import seed_corpus
from repro.cps.scada import ScadaSimulation

DURATION_S = 420.0


def describe_run(label: str, simulation: ScadaSimulation) -> tuple:
    trace = simulation.run(DURATION_S, 0.5)
    report = trace.hazards()
    hazards = ", ".join(sorted({event.kind.value for event in report.events})) or "none"
    return (
        label,
        f"{trace.max_temperature():.1f}",
        f"{trace.max_speed():.0f}",
        "yes" if simulation.sis.tripped else "no",
        hazards,
    )


def main() -> None:
    print("Step 1: where does CWE-78 land on the model?")
    corpus = build_corpus(scale=0.05)
    association = SearchEngine(corpus).associate(build_centrifuge_model())
    for name in ("BPCS Platform", "SIS Platform"):
        weaknesses = {
            match.identifier
            for attribute_match in association.component(name).attribute_matches
            for match in attribute_match.weaknesses
        }
        marker = "yes" if "CWE-78" in weaknesses else "no (below threshold at this scale)"
        print(f"  {name}: CWE-78 associated -> {marker}")
    # The seed corpus alone (no synthetic noise) always surfaces it for a
    # controller whose description mentions externally influenced input.
    seed_assoc = SearchEngine(seed_corpus(), fidelity_aware=False).associate(
        build_centrifuge_model()
    )
    bpcs_ids = {m.identifier for m in seed_assoc.component("BPCS Platform").unique_matches()}
    print(f"  (seed corpus, BPCS Platform) CWE-78 associated -> {'CWE-78' in bpcs_ids}")

    print("\nStep 2-4: what does it do to the process?")
    rows = [
        describe_run("nominal batch", ScadaSimulation()),
        describe_run(
            "CWE-78 command injection (SIS active)",
            ScadaSimulation(interventions=[CommandInjectionAttack(start_time_s=120.0)]),
        ),
        describe_run(
            "Triton-like: SIS disabled + CWE-78",
            ScadaSimulation(interventions=TritonLikeScenario().interventions()),
        ),
    ]
    print(render_table(("Run", "Peak T [C]", "Peak rpm", "SIS trip", "Hazards"), rows))

    print("\nStep 5: the consequence assessments the dashboard would attach")
    mapper = ConsequenceMapper(duration_s=DURATION_S)
    assessments = mapper.assess("CWE-78", "BPCS Platform")
    print(render_consequences(assessments))
    print(
        "\nReading: with the safety layer intact the injected commands cost the "
        "batch; with the safety layer bypassed first (as in Triton) the same "
        "weakness becomes an explosion/fire hazard -- the physical consequence "
        "IT-centric threat modeling cannot express."
    )


if __name__ == "__main__":
    main()

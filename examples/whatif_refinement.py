"""Architecture refinement and what-if comparison.

Demonstrates the two modeling workflows Section 2 of the paper describes:

* **refinement** -- start from the early-lifecycle (logical) model, apply the
  implementation choices as an explicit refinement plan, and watch the
  result space change per fidelity level;
* **what-if** -- swap a component choice (the Windows 7 workstation for a
  hardened thin client, and separately a "smart" sensor with an embedded web
  server) and compare security postures, using the paper's rule that fewer
  associated attack vectors means a better posture.

Run with::

    python examples/whatif_refinement.py [--scale 0.1]
"""

from __future__ import annotations

import argparse

from repro import build_corpus, SearchEngine
from repro.analysis.report import render_table, render_whatif
from repro.analysis.whatif import WhatIfStudy
from repro.casestudies.centrifuge import (
    build_centrifuge_model,
    centrifuge_refinement_plan,
    hardened_workstation_variant,
)
from repro.corpus.schema import RecordKind
from repro.graph.attributes import Attribute, AttributeKind, Fidelity
from repro.graph.refinement import fidelity_profile, swap_attribute
from repro.graph.validation import validate_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    args = parser.parse_args()

    corpus = build_corpus(scale=args.scale)
    engine = SearchEngine(corpus)

    print("=== Refinement: conceptual -> logical -> implementation ===")
    rows = []
    for fidelity in Fidelity:
        model = build_centrifuge_model(fidelity)
        counts = engine.associate(model).total_counts()
        profile = fidelity_profile(model)
        rows.append(
            (
                fidelity.name,
                sum(profile.values()),
                counts[RecordKind.ATTACK_PATTERN],
                counts[RecordKind.WEAKNESS],
                counts[RecordKind.VULNERABILITY],
            )
        )
    print(render_table(
        ("Model fidelity", "Attributes", "Attack patterns", "Weaknesses", "Vulnerabilities"),
        rows,
    ))

    print("\nThe same implementation model can be reached by applying the recorded")
    print("refinement plan to the logical model:")
    plan = centrifuge_refinement_plan()
    refined = plan.apply(build_centrifuge_model(Fidelity.LOGICAL))
    print(f"  plan touches: {', '.join(plan.touched_components())}")
    findings = validate_model(refined)
    print(f"  validation findings on the refined model: {len(findings)}")

    print("\n=== What-if: two alternative architectures ===")
    baseline = build_centrifuge_model()
    study = WhatIfStudy(engine)

    improved = hardened_workstation_variant(baseline)
    print(render_whatif(study.compare(baseline, improved)))

    print()
    smart_sensor = swap_attribute(
        baseline, "Temperature Sensor", "temperature measurement",
        Attribute("Apache HTTP Server", kind=AttributeKind.SOFTWARE,
                  fidelity=Fidelity.IMPLEMENTATION,
                  description="Apache HTTP Server embedded web configuration interface"),
    )
    smart_sensor.name = "smart-transmitter-variant"
    print(render_whatif(study.compare(baseline, smart_sensor)))

    print("\n=== Incremental engine statistics ===")
    stats = engine.stats
    print(f"components scored in full: {stats.components_scored}")
    print(f"components reused incrementally (what-if loop): {stats.components_reused}")
    print(f"attribute cache: {stats.attribute_cache_hits} hits / "
          f"{stats.attribute_cache_misses} misses")
    print("Each what-if comparison re-scored only the single edited component;")
    print("everything else was served from the baseline association.")


if __name__ == "__main__":
    main()

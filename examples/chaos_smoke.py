"""Chaos smoke: drive a live pre-forked ``cpsec serve`` through fault classes.

The CI ``chaos-smoke`` job uses this as its scripted chaos client.  For each
fault class it spawns a fresh ``cpsec serve`` (pre-forked where the class
needs process topology), injects the fault -- via the ``CPSEC_FAULTS``
environment seam or plain overload -- and asserts the typed, observable
recovery, always ending with the load-bearing check: **/healthz still
answers after the fault**.

Fault classes exercised:

1. ``handler-crash`` -- ``CPSEC_FAULTS=handler.crash:exit:13:1`` makes every
   worker die abruptly on its first POST; the supervisor restarts the slot
   and the GET plane never stops answering.
2. ``journal-error`` -- ``CPSEC_FAULTS=journal.append:oserror`` fails every
   journal write; the job manager degrades (flagged in ``/healthz``) while
   jobs keep running to completion.
3. ``deadline`` -- a paper-scale simulate overruns ``--request-timeout-ms``
   into a typed 504 ``deadline_exceeded``; a client header budget does the
   same.
4. ``overload`` -- ``--max-inflight 1`` sheds a concurrent request with a
   typed 503 ``overloaded`` carrying ``retry_after_s`` while ``/healthz``
   (GET: exempt) answers, and recovers once the slot frees.

Usage::

    PYTHONPATH=src python examples/chaos_smoke.py --workspace smoke.cpsecws
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

DEADLINE_HEADER = "X-Cpsec-Deadline-Ms"
SLOW_SIMULATE = {"scenario": "nominal", "duration_s": 86400.0, "dt": 0.5}


class ChaosFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosFailure(message)


def spawn(workspace: str, *extra: str, faults: str | None = None):
    """Start ``cpsec serve`` and return ``(process, url, log_lines)``."""
    env = dict(os.environ)
    if faults:
        env["CPSEC_FAULTS"] = faults
    else:
        env.pop("CPSEC_FAULTS", None)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--workspace", f"main={workspace}",
            "--port", "0",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines: list[str] = []

    def pump() -> None:
        for line in process.stdout:
            lines.append(line.rstrip("\n"))

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + 180.0
    while time.monotonic() < deadline:
        banner = next(
            (line for line in list(lines) if "serving analysis service" in line),
            None,
        )
        if banner:
            return process, banner.split("on ", 1)[1].split(" ", 1)[0], lines
        if process.poll() is not None:
            break
        time.sleep(0.1)
    process.kill()
    raise ChaosFailure(f"serve did not come up; output: {lines}")


def stop(process: subprocess.Popen, lines: list) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=90.0)
    except subprocess.TimeoutExpired:
        process.kill()
        raise ChaosFailure(f"serve did not drain on SIGTERM; output: {lines}")
    check(code == 0, f"serve exited {code}; output: {lines}")
    check(
        any("shutdown complete" in line for line in lines),
        f"no graceful shutdown banner; output: {lines}",
    )


def post(url: str, path: str, payload: dict, headers: dict | None = None):
    """POST returning ``(status, payload)``; HTTP errors are data, not raises."""
    request = urllib.request.Request(
        f"{url}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def healthz_answers(url: str, timeout: float = 30.0) -> dict:
    """The /healthz payload, retrying through restart windows."""
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(f"{url}/healthz", timeout=10) as response:
                return json.loads(response.read())
        except (urllib.error.URLError, http.client.HTTPException) as error:
            last = error
            time.sleep(0.2)
    raise ChaosFailure(f"/healthz stopped answering: {last}")


def phase_handler_crash(workspace: str) -> None:
    process, url, lines = spawn(
        workspace, "--workers", "2", "--job-journal", "none",
        faults="handler.crash:exit:13:1",
    )
    try:
        for round_number in (1, 2):
            try:
                post(url, "/v1/topology", {})
                raise ChaosFailure("injected handler crash did not fire")
            except (urllib.error.URLError, http.client.HTTPException):
                pass  # the serving worker died abruptly, as armed
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                restarts = sum(
                    1 for line in list(lines) if "restarting slot" in line
                )
                if restarts >= round_number:
                    break
                time.sleep(0.1)
            else:
                raise ChaosFailure(f"slot was not restarted; output: {lines}")
            check(
                healthz_answers(url)["status"] == "ok",
                "GET plane degraded during crash restarts",
            )
    finally:
        stop(process, lines)
    check(
        bool(re.search(r"worker \d+ exited \(13\); restarting slot \d", "\n".join(lines))),
        f"supervisor never logged the injected exit; output: {lines}",
    )


def phase_journal_error(workspace: str, scale: float) -> None:
    process, url, lines = spawn(
        workspace, "--workers", "2", faults="journal.append:oserror"
    )
    try:
        # One keep-alive connection pins one worker: the submit, the polls,
        # and the healthz all interrogate the same degraded process.
        host, port = url.split("//", 1)[1].split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=120)

        def call(method: str, path: str, payload=None) -> tuple[int, dict]:
            body = None if payload is None else json.dumps(payload).encode()
            connection.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.status, json.loads(response.read())

        status, job = call(
            "POST", "/v1/jobs",
            {"operation": "associate", "request": {"scale": scale}},
        )
        check(status == 202, f"submit failed under journal fault: {job}")
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            _, record = call("GET", f"/v1/jobs/{job['job_id']}")
            if record["state"] in ("succeeded", "failed", "cancelled"):
                break
            time.sleep(0.2)
        check(
            record["state"] == "succeeded",
            f"job did not survive the degraded journal: {record}",
        )
        status, payload = call("GET", "/healthz")
        check(status == 200, "/healthz stopped answering while degraded")
        check(
            payload["status"] == "degraded"
            and payload["jobs"]["journal_degraded"] is True,
            f"degraded journal not surfaced: {payload.get('status')}",
        )
        connection.close()
    finally:
        stop(process, lines)


def phase_deadline(workspace: str) -> None:
    process, url, lines = spawn(
        workspace, "--job-journal", "none", "--request-timeout-ms", "150"
    )
    try:
        status, payload = post(url, "/v1/simulate", SLOW_SIMULATE)
        check(
            status == 504 and payload["error"]["code"] == "deadline_exceeded",
            f"server-wide deadline did not fire: {status} {payload}",
        )
        status, payload = post(
            url, "/v1/simulate", SLOW_SIMULATE, headers={DEADLINE_HEADER: "100"}
        )
        check(
            status == 504 and payload["error"]["details"]["budget_ms"] == 100.0,
            f"header deadline did not tighten the budget: {status} {payload}",
        )
        check(healthz_answers(url)["status"] == "ok", "healthz broken after 504s")
    finally:
        stop(process, lines)


def phase_overload(workspace: str) -> None:
    process, url, lines = spawn(
        workspace, "--job-journal", "none", "--max-inflight", "1"
    )
    try:
        slow_result: dict = {}

        def occupy() -> None:
            # A deadline bounds the occupancy window: the slot holds for
            # ~5s of simulation, then frees with a typed 504.
            slow_result["response"] = post(
                url, "/v1/simulate", SLOW_SIMULATE,
                headers={DEADLINE_HEADER: "5000"},
            )

        thread = threading.Thread(target=occupy, daemon=True)
        thread.start()
        # Let the slow request claim the only slot before competing with it
        # (with no other traffic it acquires well within this head start).
        time.sleep(0.75)
        shed = None
        deadline = time.monotonic() + 3.5
        while time.monotonic() < deadline:
            status, payload = post(url, "/v1/topology", {})
            if status == 503 and payload["error"]["code"] == "overloaded":
                shed = payload["error"]
                break
            time.sleep(0.05)
        check(shed is not None, "saturated server never shed load")
        check(
            shed["details"]["retry_after_s"] > 0,
            f"shed answer carries no retry_after_s: {shed}",
        )
        check(healthz_answers(url)["status"] == "ok", "healthz shed with the POSTs")
        thread.join(timeout=120)
        check(
            slow_result["response"][0] == 504,
            f"occupying request should have hit its deadline: {slow_result}",
        )
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, _ = post(url, "/v1/topology", {})
            if status == 200:
                break
            time.sleep(0.2)
        check(status == 200, "server never recovered after the slot freed")
    finally:
        stop(process, lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workspace", required=True,
                        help="pre-built workspace artifact to serve")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="request scale matching the artifact (default 0.05)")
    args = parser.parse_args()

    phases = [
        ("handler-crash", lambda: phase_handler_crash(args.workspace)),
        ("journal-error", lambda: phase_journal_error(args.workspace, args.scale)),
        ("deadline", lambda: phase_deadline(args.workspace)),
        ("overload", lambda: phase_overload(args.workspace)),
    ]
    for name, phase in phases:
        started = time.monotonic()
        phase()
        print(f"chaos ok: {name} ({time.monotonic() - started:.1f}s)", flush=True)
    print(f"chaos smoke passed: {len(phases)} fault classes, /healthz answered after each")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Round-trip every service operation against a running ``cpsec serve``.

The CI service-smoke job uses this as its scripted client: it POSTs one
representative request per operation, fails on any non-200 response or
schema mismatch, and (unless ``--skip-local``) checks the wire bytes against
an in-process :class:`AnalysisService` answering the same requests --
the transport must change nothing.

Usage::

    PYTHONPATH=src python examples/service_roundtrip.py \\
        --url http://127.0.0.1:8765 --scale 0.05
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.service import (
    MUTATING_OPERATIONS,
    OPERATIONS,
    SCHEMA_VERSION,
    AnalysisService,
    AssociateRequest,
    ChainsRequest,
    ConsequencesRequest,
    ExportRequest,
    ExtendRequest,
    RecommendRequest,
    ServiceClient,
    ServiceError,
    SimulateRequest,
    Table1Request,
    TopologyRequest,
    ValidateRequest,
    WhatIfRequest,
    canonical_json,
)


def build_requests(scale: float) -> dict:
    """One representative request per *pure* (repeatable) operation."""
    return {
        "associate": AssociateRequest(scale=scale),
        "table1": Table1Request(scale=scale),
        "whatif": WhatIfRequest(scale=scale),
        "chains": ChainsRequest(scale=scale, limit=3),
        "topology": TopologyRequest(),
        "recommend": RecommendRequest(scale=scale, per_component=2),
        "simulate": SimulateRequest(scenario="triton-like-sis-bypass"),
        "consequences": ConsequencesRequest(record="CWE-78", duration_s=300.0),
        "validate": ValidateRequest(),
        "export": ExportRequest(),
    }


def roundtrip_extend(client: ServiceClient) -> str | None:
    """Exercise the mutating ``extend`` operation (last: it changes state).

    Appends a tiny unique record batch to the server's default workspace and
    checks the typed response.  Server-only -- the in-process comparison
    service has no artifact to extend.  Returns an error string or ``None``.
    """
    from repro.corpus.synthesis import build_extension_corpus

    records = build_extension_corpus(count=5, seed=12345, start_serial=990000)
    try:
        response = client.extend(ExtendRequest(records=records.to_dict()))
    except ServiceError as error:
        return f"extend: HTTP {error.status} {error.code}: {error.message}"
    if sum(response.added.values()) != len(records):
        return f"extend: added {response.added} != {len(records)} submitted"
    return None


def roundtrip_compact(client: ServiceClient) -> str | None:
    """Exercise the mutating ``compact`` operation (after ``extend``).

    The extend round-trip just appended a delta frame, so compacting the
    default workspace must fold at least that one back into the base
    sections.  Returns an error string or ``None``.
    """
    from repro.service import CompactRequest

    try:
        response = client.compact(CompactRequest())
    except ServiceError as error:
        return f"compact: HTTP {error.status} {error.code}: {error.message}"
    if response.frames_folded < 1:
        return (
            f"compact: folded {response.frames_folded} frames; expected the "
            "delta frame the extend round-trip just appended"
        )
    # No size assertion: for a tiny delta the page-alignment padding of the
    # rewritten sections can outweigh the removed frame overhead, so the
    # compacted artifact may legitimately be a few hundred bytes larger.
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", required=True, help="base URL of the running service")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="corpus scale the requests ask for (match the served workspace)")
    parser.add_argument("--skip-local", action="store_true",
                        help="only exercise the HTTP path (no in-process comparison)")
    args = parser.parse_args(argv)

    # A fixed trace id on every request: the server must echo it back on the
    # X-Cpsec-Trace-Id response header (success) or in the error body.
    client = ServiceClient(args.url, trace_id="ci-roundtrip")
    health = client.health()
    if health.get("status") != "ok" or health.get("schema_version") != SCHEMA_VERSION:
        print(f"FAIL healthz: unexpected payload {health}", file=sys.stderr)
        return 1
    print(f"healthz: ok (service version {health.get('version')}, "
          f"{len(health.get('engines', []))} warm engine(s))")

    local = None if args.skip_local else AnalysisService()
    requests = build_requests(args.scale)
    assert set(requests) == set(OPERATIONS) - MUTATING_OPERATIONS, (
        "round-trip must cover every pure operation"
    )
    failures: list[str] = []
    for operation, request in requests.items():
        try:
            wire = client.call_raw(operation, request.to_dict())
        except ServiceError as error:
            failures.append(f"{operation}: HTTP {error.status} {error.code}: {error.message}")
            continue
        if client.last_trace_id != "ci-roundtrip":
            failures.append(
                f"{operation}: trace id {client.last_trace_id!r} did not "
                "propagate (expected 'ci-roundtrip')"
            )
            continue
        payload = json.loads(wire)
        if payload.get("schema_version") != SCHEMA_VERSION:
            failures.append(
                f"{operation}: schema_version {payload.get('schema_version')!r} "
                f"!= {SCHEMA_VERSION}"
            )
            continue
        # The payload must parse back into the typed response...
        OPERATIONS[operation][1].from_dict(payload)
        # ...and match the in-process service byte for byte.
        if local is not None:
            mine = getattr(local, operation)(request)
            if canonical_json(mine.to_dict()) != wire.decode("utf-8"):
                failures.append(f"{operation}: HTTP response diverges from in-process")
                continue
        print(f"{operation}: ok ({len(wire)} bytes)")

    extend_failure = roundtrip_extend(client)
    if extend_failure:
        failures.append(extend_failure)
    else:
        print("extend: ok (appended a delta frame to the default workspace)")

    compact_failure = roundtrip_compact(client)
    if compact_failure:
        failures.append(compact_failure)
    else:
        print("compact: ok (folded the delta frame back into the base sections)")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print(f"all {len(requests) + 2} operations round-tripped"
          + ("" if args.skip_local else
             " and the pure ones matched the in-process service")
          + "; trace ids propagated end to end")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Design guidance: topology profile plus mitigation recommendations.

The end state the paper argues for is that systems engineers -- not security
specialists -- can act on security analysis during design.  This example
produces the two artifacts that make the analysis actionable:

* the topological profile of the architecture (attack surface, boundary
  components, choke points / single points of failure), and
* prioritized, design-time mitigation recommendations per component, each
  naming the architectural what-if to evaluate next.

Run with::

    python examples/design_guidance.py [--scale 0.1]
"""

from __future__ import annotations

import argparse

from repro import build_centrifuge_model, build_corpus, SearchEngine
from repro.analysis.recommendations import recommend
from repro.analysis.report import render_table
from repro.analysis.topology import analyze_topology, segmentation_effectiveness


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    args = parser.parse_args()

    model = build_centrifuge_model()

    print("=== Topological profile ===")
    report = analyze_topology(model)
    rows = [
        (
            component.name,
            component.degree,
            f"{component.betweenness:.3f}",
            "yes" if component.is_articulation_point else "-",
            "-" if component.exposure_distance is None else component.exposure_distance,
        )
        for component in report.ranking_by_betweenness()
    ]
    print(render_table(("Component", "Degree", "Betweenness", "Articulation", "Hops"), rows))
    print(f"attack surface: {', '.join(report.attack_surface)}")
    print(f"boundary components: {', '.join(report.boundary_components)}")
    print(f"choke points: {', '.join(c.name for c in report.choke_points())}")
    print("hops from entry to the BPCS:",
          segmentation_effectiveness(model, "BPCS Platform"))

    print("\n=== Design-time mitigation recommendations ===")
    corpus = build_corpus(scale=args.scale)
    association = SearchEngine(corpus).associate(model)
    for recommendation in recommend(association, corpus, per_component=2):
        print(recommendation.describe())
        print(f"        what-if to evaluate: {recommendation.whatif_change}")


if __name__ == "__main__":
    main()

"""Quickstart: the Fig. 1 pipeline in a dozen lines.

Builds the paper's SCADA centrifuge model, associates attack-vector data with
it, and prints the merged artifact the analyst dashboard would show: the
Table 1 counts, the per-component posture summary, and the exploit chains
that reach the main process controller.

Run with::

    python examples/quickstart.py [--scale 0.1]

``--scale 1.0`` reproduces paper-scale corpus populations (slower to build).
"""

from __future__ import annotations

import argparse

from repro import build_centrifuge_model, build_corpus, SearchEngine
from repro.analysis.report import render_posture_report, render_table1
from repro.search.chains import chain_summary, find_exploit_chains


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="synthetic corpus scale (1.0 = paper scale)")
    args = parser.parse_args()

    print(f"Building the attack-vector corpus (scale {args.scale}) ...")
    corpus = build_corpus(scale=args.scale)
    print(f"  {corpus!r}")

    print("Building the SCADA centrifuge system model ...")
    model = build_centrifuge_model()
    print(f"  {len(model)} components, {len(model.connections)} connections")

    print("Associating attack vectors with the model ...\n")
    engine = SearchEngine(corpus)
    association = engine.associate(model)

    print("=== Table 1 reproduction ===")
    print(render_table1(association))

    print("\n=== Security posture (dashboard summary) ===")
    print(render_posture_report(association))

    print("\n=== Exploit chains reaching the BPCS platform ===")
    chains = find_exploit_chains(association, "BPCS Platform")
    for chain in chains[:5]:
        print(" ", chain.describe())
    print(f"  summary: {chain_summary(chains)}")


if __name__ == "__main__":
    main()
